// The 26 labelled workload classes of the MIT Supercloud labelled dataset.
//
// Tables VII, VIII and IX of the paper enumerate the deep-learning
// architectures that were run and manually labelled on TX-Gaia, together
// with per-class job counts. This registry is the single source of truth
// for class ids, names, families and paper job counts; the simulator, the
// dataset builders and the benches all read from it.
//
// Note: the paper is internally inconsistent about the NLP counts (Table I
// says Bert=189/DistillBert=172 while Table IX says 185/241) and the ResNet
// family total (Table I says 464, Table VIII sums to 463). We follow the
// per-class Tables VII–IX, which are the ones the challenge datasets were
// cut from, and record the discrepancy here.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <string_view>

namespace scwc::telemetry {

/// Model family groups used by the signature model — sub-architectures of a
/// family share a telemetry "shape" and differ by scale, which is what makes
/// them confusable (and keeps classifier accuracy below 100 %).
enum class ModelFamily {
  kVgg,
  kResNet,
  kInception,
  kUNet,
  kBert,
  kDistilBert,
  kGnn,
};

/// Human-readable family name.
std::string_view family_name(ModelFamily family) noexcept;

/// One labelled class (row of Tables VII–IX).
struct ArchitectureInfo {
  int class_id;           ///< 0..25, the integer label used in y_train/y_test
  std::string name;       ///< e.g. "VGG16", "U4-64", "SchNet"
  ModelFamily family;
  int paper_job_count;    ///< job count from Tables VII–IX
  double depth_scale;     ///< relative compute depth within the family (≥ 1)
};

/// Number of labelled classes (26).
constexpr std::size_t kNumClasses = 26;

/// Number of GPU sensors per sample (Table III).
constexpr std::size_t kNumGpuSensors = 7;

/// Number of CPU metrics per sample (Table II).
constexpr std::size_t kNumCpuMetrics = 8;

/// GPU sensor indices, in the exact order of Table III (and of the last
/// dimension of the challenge tensors).
enum GpuSensor : std::size_t {
  kUtilizationGpuPct = 0,
  kUtilizationMemoryPct = 1,
  kMemoryFreeMiB = 2,
  kMemoryUsedMiB = 3,
  kTemperatureGpu = 4,
  kTemperatureMemory = 5,
  kPowerDrawW = 6,
};

/// Name of a GPU sensor as it appears in Table III.
std::string_view gpu_sensor_name(std::size_t sensor) noexcept;

/// Name of a CPU metric as it appears in Table II.
std::string_view cpu_metric_name(std::size_t metric) noexcept;

/// The full registry, ordered by class_id. Stable across the process.
std::span<const ArchitectureInfo> architecture_registry() noexcept;

/// Lookup by class id; throws for out-of-range ids.
const ArchitectureInfo& architecture(int class_id);

/// Lookup by name (exact match); throws for unknown names.
const ArchitectureInfo& architecture_by_name(std::string_view name);

/// Sum of paper job counts across all classes (the labelled corpus size
/// implied by Tables VII–IX).
int total_paper_jobs() noexcept;

}  // namespace scwc::telemetry
