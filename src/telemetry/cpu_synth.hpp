// CPU/host telemetry synthesiser (Table II metrics).
//
// The challenge datasets are GPU-only, but the labelled dataset the paper
// releases also carries per-job CPU series sampled by the scheduler at a
// much lower rate than the GPU sensors ("the CPU and GPU time series are
// sampled at different rates, they will have different lengths for the same
// trial"). This module completes the substrate so downstream users can
// experiment with CPU+GPU fusion, one of the challenge's stated open
// problems.
#pragma once

#include "telemetry/gpu_synth.hpp"
#include "telemetry/job.hpp"

namespace scwc::telemetry {

/// Default host sampling rate (one sample every 10 s, an order of magnitude
/// slower than the GPU sensors — mirroring the real collection pipeline).
constexpr double kDefaultCpuSampleHz = 0.1;

/// Synthesises the 8-metric host series of Table II for one node of `job`.
/// Order of columns: CPUFrequency (MHz), CPUTime (s, cumulative),
/// CPUUtilization (%), RSS (MiB), VMSize (MiB), Pages (cumulative),
/// ReadMB (per-interval), WriteMB (per-interval).
TimeSeries synthesize_cpu_series(const JobSpec& job, int node_index,
                                 double sample_hz = kDefaultCpuSampleHz);

}  // namespace scwc::telemetry
