#include "telemetry/signature.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scwc::telemetry {

namespace {

// Family-level operating points. Values are chosen to mirror published
// utilisation/power characterisations of V100 training workloads (e.g. the
// Supercloud dataset paper and the Philly traces): dense CNNs run the GPU
// near saturation, transformer language models are memory-bandwidth heavy,
// and message-passing GNNs leave the GPU starved between irregular kernels.
struct FamilyBase {
  double util_base;
  double util_amp;
  double batch_period_s;
  double util_noise;
  double epoch_period_s;
  double epoch_dip_frac;
  double epoch_dip_depth;
  double mem_base_mib;      // footprint of the depth_scale == 1 variant
  double mem_per_depth_mib; // additional MiB per unit depth_scale above 1
  double mem_util_base;
  double mem_util_coupling;
  double power_per_util;
  double stall_rate_hz;
  double stall_len_s;
  double stall_residual;
};

FamilyBase family_base(ModelFamily family) {
  switch (family) {
    case ModelFamily::kVgg:
      return FamilyBase{.util_base = 93.0, .util_amp = 5.0,
                        .batch_period_s = 0.9, .util_noise = 2.2,
                        .epoch_period_s = 95.0, .epoch_dip_frac = 0.07,
                        .epoch_dip_depth = 0.55, .mem_base_mib = 9600.0,
                        .mem_per_depth_mib = 6200.0, .mem_util_base = 46.0,
                        .mem_util_coupling = 0.55, .power_per_util = 2.35,
                        .stall_rate_hz = 0.004, .stall_len_s = 1.2,
                        .stall_residual = 0.25};
    case ModelFamily::kResNet:
      return FamilyBase{.util_base = 87.0, .util_amp = 9.0,
                        .batch_period_s = 0.55, .util_noise = 3.0,
                        .epoch_period_s = 70.0, .epoch_dip_frac = 0.08,
                        .epoch_dip_depth = 0.50, .mem_base_mib = 7400.0,
                        .mem_per_depth_mib = 3600.0, .mem_util_base = 37.0,
                        .mem_util_coupling = 0.48, .power_per_util = 2.10,
                        .stall_rate_hz = 0.006, .stall_len_s = 1.0,
                        .stall_residual = 0.30};
    case ModelFamily::kInception:
      return FamilyBase{.util_base = 83.0, .util_amp = 12.0,
                        .batch_period_s = 0.7, .util_noise = 3.6,
                        .epoch_period_s = 110.0, .epoch_dip_frac = 0.06,
                        .epoch_dip_depth = 0.45, .mem_base_mib = 8600.0,
                        .mem_per_depth_mib = 5200.0, .mem_util_base = 33.0,
                        .mem_util_coupling = 0.42, .power_per_util = 1.95,
                        .stall_rate_hz = 0.008, .stall_len_s = 1.1,
                        .stall_residual = 0.35};
    case ModelFamily::kUNet:
      return FamilyBase{.util_base = 96.0, .util_amp = 3.2,
                        .batch_period_s = 1.3, .util_noise = 1.6,
                        .epoch_period_s = 48.0, .epoch_dip_frac = 0.10,
                        .epoch_dip_depth = 0.40, .mem_base_mib = 5200.0,
                        .mem_per_depth_mib = 3100.0, .mem_util_base = 55.0,
                        .mem_util_coupling = 0.62, .power_per_util = 2.50,
                        .stall_rate_hz = 0.003, .stall_len_s = 0.8,
                        .stall_residual = 0.30};
    case ModelFamily::kBert:
      return FamilyBase{.util_base = 78.0, .util_amp = 15.0,
                        .batch_period_s = 1.15, .util_noise = 4.2,
                        .epoch_period_s = 290.0, .epoch_dip_frac = 0.04,
                        .epoch_dip_depth = 0.60, .mem_base_mib = 15600.0,
                        .mem_per_depth_mib = 5000.0, .mem_util_base = 61.0,
                        .mem_util_coupling = 0.70, .power_per_util = 2.25,
                        .stall_rate_hz = 0.010, .stall_len_s = 1.6,
                        .stall_residual = 0.20};
    case ModelFamily::kDistilBert:
      return FamilyBase{.util_base = 71.0, .util_amp = 13.0,
                        .batch_period_s = 0.72, .util_noise = 4.0,
                        .epoch_period_s = 180.0, .epoch_dip_frac = 0.05,
                        .epoch_dip_depth = 0.55, .mem_base_mib = 9900.0,
                        .mem_per_depth_mib = 3200.0, .mem_util_base = 50.0,
                        .mem_util_coupling = 0.66, .power_per_util = 2.05,
                        .stall_rate_hz = 0.012, .stall_len_s = 1.4,
                        .stall_residual = 0.22};
    case ModelFamily::kGnn:
      return FamilyBase{.util_base = 38.0, .util_amp = 20.0,
                        .batch_period_s = 2.1, .util_noise = 7.5,
                        .epoch_period_s = 25.0, .epoch_dip_frac = 0.14,
                        .epoch_dip_depth = 0.55, .mem_base_mib = 2600.0,
                        .mem_per_depth_mib = 1500.0, .mem_util_base = 12.0,
                        .mem_util_coupling = 0.25, .power_per_util = 1.55,
                        .stall_rate_hz = 0.10, .stall_len_s = 2.2,
                        .stall_residual = 0.12};
  }
  SCWC_FAIL("unhandled model family");
}

// Per-class tweaks on top of the family base, driven by depth_scale.
// Deeper variants: larger memory footprint, slower batches, slightly lower
// achieved utilisation (more memory traffic per FLOP), higher power draw.
GpuSignature derive(const ArchitectureInfo& arch) {
  const FamilyBase fb = family_base(arch.family);
  const double d = arch.depth_scale;
  GpuSignature s{};
  s.util_base = std::clamp(fb.util_base - 2.4 * (d - 1.0), 5.0, 99.0);
  s.util_batch_amp = fb.util_amp * (1.0 + 0.12 * (d - 1.0));
  s.batch_period_s = fb.batch_period_s * (0.75 + 0.25 * d);
  s.util_noise_sd = fb.util_noise;
  s.epoch_period_s = fb.epoch_period_s * (0.80 + 0.20 * d);
  s.epoch_dip_frac = fb.epoch_dip_frac;
  s.epoch_dip_depth = fb.epoch_dip_depth;
  s.mem_used_mib = fb.mem_base_mib + fb.mem_per_depth_mib * (d - 1.0);
  s.mem_wander_mib = 0.035 * s.mem_used_mib;
  s.mem_util_base = std::clamp(fb.mem_util_base * (1.0 + 0.10 * (d - 1.0)),
                               2.0, 98.0);
  s.mem_util_coupling = fb.mem_util_coupling;
  s.mem_util_noise_sd = 0.25 * fb.util_noise;
  s.power_per_util = fb.power_per_util * (1.0 + 0.05 * (d - 1.0));
  s.power_noise_sd = 4.0;
  s.stall_rate_hz = fb.stall_rate_hz;
  s.stall_len_s = fb.stall_len_s;
  s.stall_residual = fb.stall_residual;
  s.startup_mean_s = 45.0;
  s.startup_sd_s = 14.0;
  return s;
}

}  // namespace

GpuSignature base_signature(const ArchitectureInfo& arch) {
  return derive(arch);
}

GpuSignature jitter_signature(const GpuSignature& nominal, Rng& rng) {
  GpuSignature s = nominal;
  // Batch size is the dominant per-job degree of freedom: it scales the
  // oscillation period and the activation footprint together.
  const double batch_factor = std::exp(rng.normal(0.0, 0.18));
  s.batch_period_s = nominal.batch_period_s * batch_factor;
  // Memory footprints overlap heavily across jobs of neighbouring classes
  // (batch size, input resolution and framework caching dominate the model
  // itself), so absolute memory levels are a weak class signature — in the
  // real data the discriminative features are the utilisation dynamics
  // (§IV-B's top-3 are util/power variances and covariances).
  s.mem_used_mib =
      nominal.mem_used_mib * (0.70 + 0.30 * batch_factor) *
      std::exp(rng.normal(0.0, 0.10));
  s.mem_used_mib = std::clamp(s.mem_used_mib, 500.0,
                              gpu_device().total_memory_mib * 0.96);
  s.util_base = std::clamp(nominal.util_base + rng.normal(0.0, 1.2), 3.0, 99.5);
  s.util_batch_amp = nominal.util_batch_amp * std::exp(rng.normal(0.0, 0.12));
  s.epoch_period_s = nominal.epoch_period_s * std::exp(rng.normal(0.0, 0.20));
  s.mem_util_base =
      std::clamp(nominal.mem_util_base + rng.normal(0.0, 1.2), 1.0, 99.0);
  s.power_per_util = nominal.power_per_util * std::exp(rng.normal(0.0, 0.04));
  s.stall_rate_hz = nominal.stall_rate_hz * std::exp(rng.normal(0.0, 0.25));
  s.startup_mean_s =
      std::max(12.0, nominal.startup_mean_s + rng.normal(0.0, nominal.startup_sd_s));
  return s;
}

const StartupSignature& startup_signature() noexcept {
  static const StartupSignature s{};
  return s;
}

const GpuDevice& gpu_device() noexcept {
  static const GpuDevice d{};
  return d;
}

}  // namespace scwc::telemetry
