#include "telemetry/corpus.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "telemetry/architectures.hpp"
#include "obs/trace.hpp"

namespace scwc::telemetry {

std::map<int, int> Corpus::class_counts() const {
  std::map<int, int> counts;
  for (const auto& j : jobs_) ++counts[j.class_id];
  return counts;
}

std::int64_t Corpus::total_gpu_series() const noexcept {
  std::int64_t total = 0;
  for (const auto& j : jobs_) total += j.num_gpus;
  return total;
}

std::vector<JobSpec> Corpus::jobs_running_at_least(double min_duration_s) const {
  std::vector<JobSpec> out;
  out.reserve(jobs_.size());
  for (const auto& j : jobs_) {
    if (j.duration_s >= min_duration_s) out.push_back(j);
  }
  return out;
}

Corpus generate_corpus(const CorpusConfig& config) {
  const obs::TraceSpan span("telemetry.generate_corpus");
  SCWC_REQUIRE(config.jobs_per_class_scale > 0.0,
               "jobs_per_class_scale must be positive");
  SCWC_REQUIRE(config.min_jobs_per_class >= 2,
               "min_jobs_per_class must be at least 2 for an 80/20 split");

  Rng root(config.seed);
  std::vector<JobSpec> jobs;
  std::int64_t next_id = 1;

  for (const ArchitectureInfo& arch : architecture_registry()) {
    // Each class gets its own child stream so the corpus for class k is
    // independent of how many jobs other classes received.
    Rng class_rng = root.fork();
    const int target = std::max(
        config.min_jobs_per_class,
        static_cast<int>(std::lround(arch.paper_job_count *
                                     config.jobs_per_class_scale)));
    for (int i = 0; i < target; ++i) {
      JobSpec job;
      job.job_id = next_id++;
      job.class_id = arch.class_id;
      job.duration_s = sample_duration_s(class_rng);
      job.num_gpus = sample_num_gpus(class_rng);
      job.num_nodes = nodes_for_gpus(job.num_gpus);
      job.seed = class_rng.next_u64();
      jobs.push_back(job);
    }
  }
  return Corpus(std::move(jobs));
}

}  // namespace scwc::telemetry
