#include "telemetry/gpu_synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace scwc::telemetry {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Evolving state for one synthesised GPU.
struct SynthState {
  double temp_c;        // die temperature (first-order model)
  double mem_wander;    // slow random walk on the memory footprint
  double stall_left_s;  // remaining duration of the current stall
  double batch_phase;   // per-GPU oscillation phase offset
  double startup_s;     // realised startup duration for this GPU
};

double clamp01pct(double v) { return std::clamp(v, 0.0, 100.0); }

}  // namespace

TimeSeries synthesize_gpu_series_prefix(const JobSpec& job, int gpu_index,
                                        double sample_hz,
                                        std::size_t max_steps) {
  SCWC_REQUIRE(sample_hz > 0.0, "sample_hz must be positive");
  SCWC_REQUIRE(gpu_index >= 0 && gpu_index < job.num_gpus,
               "gpu_index out of range for job");

  const GpuDevice& dev = gpu_device();
  const StartupSignature& su = startup_signature();

  // Signature jitter depends on the job seed only: all GPUs of a job run
  // the same model with the same batch size.
  Rng job_rng(job.seed);
  const GpuSignature nominal =
      base_signature(architecture(job.class_id));
  const GpuSignature sig = jitter_signature(nominal, job_rng);

  // Per-GPU streams: noise, phase offsets, local thermals.
  Rng rng(job.seed ^ (0x9e3779b97f4a7c15ULL * static_cast<std::uint64_t>(
                                                  gpu_index + 1)));

  SynthState st{};
  st.temp_c = dev.ambient_temp_c + rng.normal(0.0, 1.0);
  st.mem_wander = 0.0;
  st.stall_left_s = 0.0;
  st.batch_phase = rng.uniform(0.0, kTwoPi);
  // GPU 0 hosts the dataloader rank: it starts a little earlier and stalls
  // slightly more; the rest join once data is staged.
  st.startup_s = sig.startup_mean_s * (gpu_index == 0 ? 1.0 : 1.08) *
                 std::exp(rng.normal(0.0, 0.10));

  const double dt = 1.0 / sample_hz;
  const std::size_t total_steps = static_cast<std::size_t>(
      std::floor(job.duration_s * sample_hz));
  const std::size_t steps = std::min(total_steps, max_steps);

  TimeSeries out;
  out.sample_hz = sample_hz;
  out.values = linalg::Matrix(steps, kNumGpuSensors);

  const double stall_rate =
      sig.stall_rate_hz * (gpu_index == 0 ? 1.25 : 1.0);
  // Small per-GPU ambient offset (rack position).
  const double ambient = dev.ambient_temp_c + rng.normal(0.0, 1.2);
  const double epoch_phase = rng.uniform(0.0, 1.0);

  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * dt;
    double util = 0.0;
    double mem_util = 0.0;
    double mem_used = 0.0;

    if (t < st.startup_s) {
      // ---- Startup phase: mostly class-generic, partially leaking ----
      // Data staging and imports look alike for every model, but the first
      // compiled batches already run at the class's operating point. The
      // blend weight ramps linearly through the phase, which yields the
      // paper's start-window behaviour: clearly harder than steady windows
      // (Table V/VI) yet far above chance.
      const double frac = t / st.startup_s;
      const double generic_util =
          su.util_burst_level +
          su.util_burst_amp *
              std::sin(kTwoPi * t / su.burst_period_s + st.batch_phase) +
          rng.normal(0.0, su.util_noise_sd);
      const double w = kTwoPi / sig.batch_period_s;
      const double steady_osc =
          std::sin(w * t + st.batch_phase) +
          0.35 * std::sin(2.0 * w * t + 1.3 * st.batch_phase);
      const double steady_util = sig.util_base +
                                 sig.util_batch_amp * 0.74 * steady_osc +
                                 rng.normal(0.0, sig.util_noise_sd);
      const double blend = 0.70 * frac;
      util = (1.0 - blend) * generic_util + blend * steady_util;

      // Memory ramps from the framework baseline to the model footprint as
      // the model and optimiser state are materialised.
      const double ramp =
          std::min(1.0, frac / std::max(1e-9, su.ramp_fraction));
      mem_used = su.base_memory_mib +
                 ramp * (sig.mem_used_mib - su.base_memory_mib);
      const double generic_mem_util =
          su.mem_util_level + rng.normal(0.0, su.mem_util_noise_sd);
      const double steady_mem_util =
          sig.mem_util_base +
          sig.mem_util_coupling * (steady_util - sig.util_base) +
          rng.normal(0.0, sig.mem_util_noise_sd);
      mem_util = (1.0 - blend) * generic_mem_util + blend * steady_mem_util;
    } else {
      // ---- Steady training ----
      const double ts = t - st.startup_s;
      // Batch-frequency oscillation: sine + its second harmonic gives the
      // asymmetric sawtooth-ish shape of real utilisation traces.
      const double w = kTwoPi / sig.batch_period_s;
      double osc = std::sin(w * ts + st.batch_phase) +
                   0.35 * std::sin(2.0 * w * ts + 1.3 * st.batch_phase);
      util = sig.util_base + sig.util_batch_amp * 0.74 * osc +
             rng.normal(0.0, sig.util_noise_sd);

      // Epoch dip (validation / checkpointing).
      const double epos =
          std::fmod(ts / sig.epoch_period_s + epoch_phase, 1.0);
      const bool in_dip = epos < sig.epoch_dip_frac;
      if (in_dip) util *= (1.0 - sig.epoch_dip_depth);

      // Dataloader stalls (Poisson arrivals, exponential length).
      if (st.stall_left_s > 0.0) {
        util *= sig.stall_residual;
        st.stall_left_s -= dt;
      } else if (rng.bernoulli(1.0 - std::exp(-stall_rate * dt))) {
        st.stall_left_s = rng.exponential(1.0 / std::max(0.05, sig.stall_len_s));
      }

      // Memory footprint: constant plus a slow bounded random walk
      // (allocator caching) plus a dip while validating.
      st.mem_wander += rng.normal(0.0, sig.mem_wander_mib * 0.05);
      st.mem_wander = std::clamp(st.mem_wander, -sig.mem_wander_mib,
                                 sig.mem_wander_mib);
      mem_used = sig.mem_used_mib + st.mem_wander;
      if (in_dip) mem_used *= 0.97;

      mem_util = sig.mem_util_base +
                 sig.mem_util_coupling * (util - sig.util_base) +
                 rng.normal(0.0, sig.mem_util_noise_sd);
    }

    util = clamp01pct(util);
    mem_util = clamp01pct(mem_util);
    mem_used = std::clamp(mem_used, 0.0, dev.total_memory_mib);

    // Power: affine in utilisation with measurement noise.
    double power = dev.idle_power_w + sig.power_per_util * util +
                   rng.normal(0.0, sig.power_noise_sd);
    power = std::clamp(power, 0.8 * dev.idle_power_w, dev.max_power_w);

    // First-order thermal response to dissipated power.
    const double temp_target = ambient + dev.temp_per_watt * power;
    st.temp_c += (dt / dev.temp_tau_s) * (temp_target - st.temp_c);
    const double temp_gpu =
        std::clamp(st.temp_c + rng.normal(0.0, 0.3), 10.0, 95.0);
    const double temp_mem = std::clamp(
        temp_gpu + dev.mem_temp_offset_c + rng.normal(0.0, 0.4), 10.0, 99.0);

    auto row = out.values.row(i);
    row[kUtilizationGpuPct] = util;
    row[kUtilizationMemoryPct] = mem_util;
    row[kMemoryFreeMiB] = dev.total_memory_mib - mem_used;
    row[kMemoryUsedMiB] = mem_used;
    row[kTemperatureGpu] = temp_gpu;
    row[kTemperatureMemory] = temp_mem;
    row[kPowerDrawW] = power;
  }
  return out;
}

TimeSeries synthesize_gpu_series(const JobSpec& job, int gpu_index,
                                 double sample_hz) {
  return synthesize_gpu_series_prefix(job, gpu_index, sample_hz,
                                      static_cast<std::size_t>(-1));
}

}  // namespace scwc::telemetry
