// Per-class telemetry signature model.
//
// The real labelled dataset was produced by running actual DNN training
// jobs on V100 nodes; we cannot rerun those here, so this module encodes
// what the classifiers in the paper actually exploit: each architecture has
// a characteristic *operating point* (GPU/memory utilisation levels, memory
// footprint, power) and *temporal texture* (batch-rate oscillation, epoch
// validation dips, dataloader stalls), with sub-architectures of a family
// sharing the shape and differing by scale. The paper's key empirical
// finding — windows from the start of a job are the hardest to classify —
// is reproduced by a class-generic startup phase (dataset download/parse,
// library initialisation) that precedes steady training in every job.
#pragma once

#include "common/rng.hpp"
#include "telemetry/architectures.hpp"

namespace scwc::telemetry {

/// Physical device constants for the simulated NVIDIA V100-32GB.
struct GpuDevice {
  double total_memory_mib = 32510.0;  ///< as reported by nvidia-smi
  double ambient_temp_c = 30.0;       ///< inlet air temperature
  double temp_per_watt = 0.175;       ///< steady-state °C per Watt
  double temp_tau_s = 25.0;           ///< first-order thermal time constant
  double mem_temp_offset_c = 4.5;     ///< HBM runs hotter than the die
  double idle_power_w = 42.0;
  double max_power_w = 300.0;         ///< board power limit
};

/// Steady-state training signature for one class (after per-job jitter).
struct GpuSignature {
  // Utilisation process: base level with batch-frequency oscillation.
  double util_base;        ///< mean GPU utilisation %, steady training
  double util_batch_amp;   ///< oscillation amplitude (%)
  double batch_period_s;   ///< seconds per batch-group oscillation
  double util_noise_sd;    ///< white noise on utilisation (%)

  // Epoch structure: periodic validation/checkpoint dip.
  double epoch_period_s;   ///< seconds per epoch
  double epoch_dip_frac;   ///< fraction of the epoch spent in the dip
  double epoch_dip_depth;  ///< relative utilisation drop during the dip

  // Memory.
  double mem_used_mib;     ///< steady allocator footprint
  double mem_wander_mib;   ///< slow random-walk amplitude of the footprint
  double mem_util_base;    ///< memory-controller utilisation % at util_base
  double mem_util_coupling;///< d(mem_util)/d(gpu_util)
  double mem_util_noise_sd;

  // Power: affine in utilisation plus noise.
  double power_per_util;   ///< Watts per utilisation %
  double power_noise_sd;

  // Dataloader stalls (dominant texture for GNN workloads).
  double stall_rate_hz;    ///< Poisson rate of stalls
  double stall_len_s;      ///< mean stall duration
  double stall_residual;   ///< utilisation fraction remaining during a stall

  // Startup phase (class-generic, see StartupSignature).
  double startup_mean_s;   ///< mean duration of the generic startup phase
  double startup_sd_s;
};

/// The class-generic startup phase: data staging, Python imports, CUDA
/// context creation. Deliberately (nearly) identical across classes — this
/// is what degrades classification accuracy on "start" windows in Table V
/// and Table VI of the paper.
struct StartupSignature {
  double util_burst_level = 28.0;   ///< mean of short compute bursts (%)
  double util_burst_amp = 18.0;
  double burst_period_s = 5.5;
  double util_noise_sd = 6.0;
  double base_memory_mib = 650.0;   ///< CUDA context + framework overhead
  double ramp_fraction = 0.55;      ///< memory reaches the model footprint
                                    ///  after this fraction of the startup
  double mem_util_level = 9.0;
  double mem_util_noise_sd = 3.0;
};

/// Nominal (pre-jitter) signature for a class. Deterministic.
GpuSignature base_signature(const ArchitectureInfo& arch);

/// Applies per-job jitter: batch-size choice, dataset variation, node
/// thermals. Two jobs of one class get correlated but distinct signatures;
/// this is what keeps the problem from being trivially separable.
GpuSignature jitter_signature(const GpuSignature& nominal, Rng& rng);

/// The startup signature (shared by every class; tiny per-job jitter is
/// applied inside the synthesiser).
const StartupSignature& startup_signature() noexcept;

/// The simulated device model.
const GpuDevice& gpu_device() noexcept;

}  // namespace scwc::telemetry
