// GPU telemetry synthesiser.
//
// Produces the 7-sensor series of Table III for one GPU of one job,
// deterministic in (job seed, gpu index, sample rate). The generator is a
// small state machine — startup phase, then steady training with batch
// oscillation, epoch dips, dataloader stalls and a first-order thermal
// model — discretised at the requested sampling rate.
#pragma once

#include "linalg/matrix.hpp"
#include "telemetry/job.hpp"
#include "telemetry/signature.hpp"

namespace scwc::telemetry {

/// A sampled multi-sensor time series: `values` is T×S, row t holding all
/// sensors at time t / sample_hz.
struct TimeSeries {
  double sample_hz = 0.0;
  linalg::Matrix values;  ///< T × sensors

  [[nodiscard]] std::size_t steps() const noexcept { return values.rows(); }
  [[nodiscard]] std::size_t sensors() const noexcept { return values.cols(); }
  [[nodiscard]] double duration_s() const noexcept {
    return sample_hz > 0.0 ? static_cast<double>(steps()) / sample_hz : 0.0;
  }
};

/// Synthesises the full GPU series for `gpu_index` of `job`.
///
/// The per-job signature jitter is derived from job.seed alone, so every
/// GPU of one job shares the job's signature; per-GPU phase offsets and
/// noise streams come from (job.seed, gpu_index), making replicated series
/// correlated but not identical — exactly the structure the real dataset
/// has when a job's label is repeated across its GPUs.
TimeSeries synthesize_gpu_series(const JobSpec& job, int gpu_index,
                                 double sample_hz);

/// Cheaper variant that stops the simulation after `max_steps` samples
/// (used when only a prefix window is required).
TimeSeries synthesize_gpu_series_prefix(const JobSpec& job, int gpu_index,
                                        double sample_hz,
                                        std::size_t max_steps);

}  // namespace scwc::telemetry
