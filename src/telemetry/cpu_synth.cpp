#include "telemetry/cpu_synth.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace scwc::telemetry {

namespace {

/// Host-side intensity per family: vision dataloaders hammer the CPUs and
/// the filesystem; language models stream tokenised shards; GNNs spend CPU
/// time on graph batching.
struct HostProfile {
  double util_base;     // % across the allocated cores
  double util_amp;
  double rss_mib;
  double read_mb_per_s;
  double write_burst_mb; // checkpoint size written at epoch boundaries
};

HostProfile host_profile(ModelFamily family) {
  switch (family) {
    case ModelFamily::kVgg:
      return {62.0, 14.0, 21000.0, 95.0, 530.0};
    case ModelFamily::kResNet:
      return {58.0, 15.0, 18500.0, 110.0, 260.0};
    case ModelFamily::kInception:
      return {55.0, 16.0, 19500.0, 105.0, 340.0};
    case ModelFamily::kUNet:
      return {48.0, 10.0, 16000.0, 140.0, 180.0};
    case ModelFamily::kBert:
      return {30.0, 8.0, 30000.0, 60.0, 1300.0};
    case ModelFamily::kDistilBert:
      return {28.0, 8.0, 23000.0, 55.0, 700.0};
    case ModelFamily::kGnn:
      return {44.0, 18.0, 9000.0, 25.0, 60.0};
  }
  SCWC_FAIL("unhandled model family");
}

}  // namespace

TimeSeries synthesize_cpu_series(const JobSpec& job, int node_index,
                                 double sample_hz) {
  SCWC_REQUIRE(sample_hz > 0.0, "sample_hz must be positive");
  SCWC_REQUIRE(node_index >= 0 && node_index < job.num_nodes,
               "node_index out of range for job");

  HostProfile prof = host_profile(architecture(job.class_id).family);
  Rng job_rng(job.seed ^ 0xC0FFEEULL);
  // Per-job host variability: dataloader worker counts, dataset location
  // (local scratch vs Lustre), checkpoint cadence and co-resident daemons
  // make host metrics far noisier per job than the GPU counters are.
  prof.util_base *= std::exp(job_rng.normal(0.0, 0.20));
  prof.util_amp *= std::exp(job_rng.normal(0.0, 0.25));
  prof.rss_mib *= std::exp(job_rng.normal(0.0, 0.30));
  prof.read_mb_per_s *= std::exp(job_rng.normal(0.0, 0.35));
  prof.write_burst_mb *= std::exp(job_rng.normal(0.0, 0.40));
  const GpuSignature sig =
      jitter_signature(base_signature(architecture(job.class_id)), job_rng);
  Rng rng(job.seed ^ (0xa0761d6478bd642fULL *
                      static_cast<std::uint64_t>(node_index + 7)));

  const double dt = 1.0 / sample_hz;
  const auto steps =
      static_cast<std::size_t>(std::floor(job.duration_s * sample_hz));

  TimeSeries out;
  out.sample_hz = sample_hz;
  out.values = linalg::Matrix(steps, kNumCpuMetrics);

  const double startup_s = sig.startup_mean_s;
  const double epoch_s = sig.epoch_period_s;
  double cpu_time_s = 0.0;
  double pages = rng.uniform(2.0e5, 4.0e5);
  const int cores = 40;  // two 20-core Xeon 6248 per TX-Gaia node

  for (std::size_t i = 0; i < steps; ++i) {
    const double t = static_cast<double>(i) * dt;
    double util;
    double read_mb;
    double write_mb = 0.0;
    double rss;
    if (t < startup_s) {
      // Startup: heavy read (staging the dataset), moderate CPU.
      util = 35.0 + rng.normal(0.0, 8.0);
      read_mb = (prof.read_mb_per_s * 3.0 + rng.normal(0.0, 20.0)) * dt;
      rss = prof.rss_mib * std::min(1.0, t / startup_s) * 0.8;
    } else {
      const double ts = t - startup_s;
      util = prof.util_base +
             prof.util_amp *
                 std::sin(2.0 * std::numbers::pi * ts / (epoch_s * 0.23)) +
             rng.normal(0.0, 4.0);
      read_mb = (prof.read_mb_per_s + rng.normal(0.0, 8.0)) * dt;
      rss = prof.rss_mib * (1.0 + 0.03 * std::sin(ts / 300.0)) +
            rng.normal(0.0, 120.0);
      // Checkpoint write at epoch boundaries.
      const double epos = std::fmod(ts, epoch_s);
      if (epos < dt) write_mb = prof.write_burst_mb * rng.uniform(0.8, 1.2);
    }
    util = std::clamp(util, 0.0, 100.0);
    cpu_time_s += dt * util / 100.0 * cores;
    pages += std::max(0.0, rng.normal(900.0, 250.0)) * dt;

    // Frequency governor: boost under load, base clock otherwise.
    const double freq =
        util > 50.0 ? rng.normal(3700.0, 60.0) : rng.normal(2700.0, 120.0);

    auto row = out.values.row(i);
    row[0] = std::clamp(freq, 1200.0, 4000.0);           // CPUFrequency
    row[1] = cpu_time_s;                                  // CPUTime
    row[2] = util;                                        // CPUUtilization
    row[3] = std::max(500.0, rss);                        // RSS
    row[4] = std::max(500.0, rss) * 1.6 + 9000.0;         // VMSize
    row[5] = pages;                                       // Pages
    row[6] = std::max(0.0, read_mb);                      // ReadMB
    row[7] = std::max(0.0, write_mb);                     // WriteMB
  }
  return out;
}

}  // namespace scwc::telemetry
