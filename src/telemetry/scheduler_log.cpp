#include "telemetry/scheduler_log.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace scwc::telemetry {

std::string_view job_state_name(JobState state) noexcept {
  switch (state) {
    case JobState::kCompleted:
      return "COMPLETED";
    case JobState::kFailed:
      return "FAILED";
    case JobState::kTimeout:
      return "TIMEOUT";
    case JobState::kCancelled:
      return "CANCELLED";
  }
  return "?";
}

namespace {

std::string hash_hex(std::uint64_t value) {
  // SplitMix64 avalanche as the "anonymisation" hash (the real pipeline
  // uses salted SHA-256; here only the shape of the field matters).
  SplitMix64 sm(value);
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << sm.next();
  return os.str();
}

}  // namespace

std::vector<SchedulerRecord> build_scheduler_log(
    const Corpus& corpus, const SchedulerConfig& config) {
  SCWC_REQUIRE(config.mean_interarrival_s > 0.0,
               "scheduler: interarrival must be positive");
  SCWC_REQUIRE(config.simulated_users >= 1, "scheduler: need users");

  Rng rng(config.seed);
  std::vector<SchedulerRecord> records;
  records.reserve(corpus.size());

  double clock_s = 0.0;
  for (const JobSpec& job : corpus.jobs()) {
    clock_s += rng.exponential(1.0 / config.mean_interarrival_s);

    SchedulerRecord rec;
    rec.job_id = job.job_id;
    // Users submit in bursts: the user id is sticky across nearby jobs.
    if (rng.bernoulli(0.6) && !records.empty()) {
      rec.user_hash = records.back().user_hash;
    } else {
      rec.user_hash =
          hash_hex(config.seed ^ rng.uniform_index(config.simulated_users));
    }
    rec.partition = "gaia";
    rec.submit_time_s = clock_s;
    const double queue_wait =
        rng.lognormal(config.queue_wait_mu, config.queue_wait_sigma);
    rec.start_time_s = rec.submit_time_s + queue_wait;
    rec.end_time_s = rec.start_time_s + job.duration_s;
    rec.nodes = job.num_nodes;
    rec.gpus = job.num_gpus;
    rec.cpus = job.num_nodes * 40;  // two 20-core Xeons per node

    if (job.duration_s >= config.timeout_limit_s) {
      rec.state = JobState::kTimeout;
    } else if (job.duration_s < 60.0) {
      // The short-lived jobs in the corpus are the crashed ones.
      rec.state = rng.bernoulli(0.8) ? JobState::kFailed
                                     : JobState::kCancelled;
    } else {
      rec.state = rng.bernoulli(0.97) ? JobState::kCompleted
                                      : JobState::kFailed;
    }
    records.push_back(std::move(rec));
  }

  std::sort(records.begin(), records.end(),
            [](const SchedulerRecord& a, const SchedulerRecord& b) {
              return a.submit_time_s < b.submit_time_s;
            });
  return records;
}

void export_scheduler_csv(const std::vector<SchedulerRecord>& records,
                          const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::trunc);
  SCWC_REQUIRE(os.is_open(), "cannot open " + path.string() + " for writing");
  os << "job_id,user,partition,submit_s,start_s,end_s,nodes,gpus,cpus,"
        "state\n";
  for (const auto& rec : records) {
    os << rec.job_id << ',' << rec.user_hash << ',' << rec.partition << ','
       << rec.submit_time_s << ',' << rec.start_time_s << ','
       << rec.end_time_s << ',' << rec.nodes << ',' << rec.gpus << ','
       << rec.cpus << ',' << job_state_name(rec.state) << '\n';
  }
  SCWC_REQUIRE(os.good(), "scheduler csv: write failed");
}

}  // namespace scwc::telemetry
