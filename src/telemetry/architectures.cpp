#include "telemetry/architectures.hpp"

#include <array>
#include <vector>

#include "common/error.hpp"

namespace scwc::telemetry {

std::string_view family_name(ModelFamily family) noexcept {
  switch (family) {
    case ModelFamily::kVgg:
      return "VGG";
    case ModelFamily::kResNet:
      return "ResNet";
    case ModelFamily::kInception:
      return "Inception";
    case ModelFamily::kUNet:
      return "U-Net";
    case ModelFamily::kBert:
      return "Bert";
    case ModelFamily::kDistilBert:
      return "DistillBert";
    case ModelFamily::kGnn:
      return "GNN";
  }
  return "?";
}

std::string_view gpu_sensor_name(std::size_t sensor) noexcept {
  static constexpr std::array<std::string_view, kNumGpuSensors> kNames{
      "utilization_gpu_pct", "utilization_memory_pct", "memory_free_MiB",
      "memory_used_MiB",     "temperature_gpu",        "temperature_memory",
      "power_draw_W",
  };
  return sensor < kNames.size() ? kNames[sensor] : "?";
}

std::string_view cpu_metric_name(std::size_t metric) noexcept {
  static constexpr std::array<std::string_view, kNumCpuMetrics> kNames{
      "CPUFrequency", "CPUTime", "CPUUtilization", "RSS",
      "VMSize",       "Pages",   "ReadMB",         "WriteMB",
  };
  return metric < kNames.size() ? kNames[metric] : "?";
}

namespace {

std::vector<ArchitectureInfo> build_registry() {
  std::vector<ArchitectureInfo> r;
  r.reserve(kNumClasses);
  int id = 0;
  const auto add = [&r, &id](std::string name, ModelFamily fam, int jobs,
                             double depth) {
    r.push_back(ArchitectureInfo{id++, std::move(name), fam, jobs, depth});
  };
  // Table VII — VGG and Inception vision models.
  add("VGG11", ModelFamily::kVgg, 185, 1.00);
  add("VGG16", ModelFamily::kVgg, 176, 1.35);
  add("VGG19", ModelFamily::kVgg, 199, 1.55);
  add("Inception3", ModelFamily::kInception, 241, 1.00);
  add("Inception4", ModelFamily::kInception, 243, 1.45);
  // Table VIII — ResNet variants.
  add("ResNet50", ModelFamily::kResNet, 111, 1.00);
  add("ResNet50_v1.5", ModelFamily::kResNet, 91, 1.08);
  add("ResNet101", ModelFamily::kResNet, 77, 1.70);
  add("ResNet101_v2", ModelFamily::kResNet, 54, 1.78);
  add("ResNet152", ModelFamily::kResNet, 76, 2.35);
  add("ResNet152_v2", ModelFamily::kResNet, 54, 2.45);
  // Table VIII — U-Net variants (U<depth>-<base filters>).
  add("U3-32", ModelFamily::kUNet, 165, 1.00);
  add("U3-64", ModelFamily::kUNet, 159, 1.45);
  add("U3-128", ModelFamily::kUNet, 165, 2.10);
  add("U4-32", ModelFamily::kUNet, 163, 1.25);
  add("U4-64", ModelFamily::kUNet, 158, 1.80);
  add("U4-128", ModelFamily::kUNet, 157, 2.60);
  add("U5-32", ModelFamily::kUNet, 158, 1.55);
  add("U5-64", ModelFamily::kUNet, 158, 2.25);
  add("U5-128", ModelFamily::kUNet, 148, 3.20);
  // Table IX — NLP.
  add("Bert", ModelFamily::kBert, 185, 1.00);
  add("DistillBert", ModelFamily::kDistilBert, 241, 1.00);
  // Table IX — GNN.
  add("Dimenet", ModelFamily::kGnn, 33, 1.60);
  add("Schnet", ModelFamily::kGnn, 39, 1.00);
  add("PNA", ModelFamily::kGnn, 27, 1.30);
  add("NNConv", ModelFamily::kGnn, 32, 1.15);
  SCWC_CHECK(r.size() == kNumClasses, "architecture registry must have 26 classes");
  return r;
}

const std::vector<ArchitectureInfo>& registry() {
  static const std::vector<ArchitectureInfo> r = build_registry();
  return r;
}

}  // namespace

std::span<const ArchitectureInfo> architecture_registry() noexcept {
  return registry();
}

const ArchitectureInfo& architecture(int class_id) {
  SCWC_REQUIRE(class_id >= 0 && static_cast<std::size_t>(class_id) < kNumClasses,
               "class_id out of range [0, 26)");
  return registry()[static_cast<std::size_t>(class_id)];
}

const ArchitectureInfo& architecture_by_name(std::string_view name) {
  for (const auto& a : registry()) {
    if (a.name == name) return a;
  }
  SCWC_FAIL("unknown architecture name: " + std::string(name));
}

int total_paper_jobs() noexcept {
  int total = 0;
  for (const auto& a : registry()) total += a.paper_job_count;
  return total;
}

}  // namespace scwc::telemetry
