#include "linalg/matrix.hpp"

#include <cmath>
#include <iomanip>
#include <sstream>

namespace scwc::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    SCWC_REQUIRE(r.size() == cols_, "ragged initializer_list for Matrix");
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

double& Matrix::at(std::size_t r, std::size_t c) {
  SCWC_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

double Matrix::at(std::size_t r, std::size_t c) const {
  SCWC_REQUIRE(r < rows_ && c < cols_, "Matrix::at out of range");
  return (*this)(r, c);
}

void Matrix::reshape(std::size_t rows, std::size_t cols) {
  SCWC_REQUIRE(rows * cols == data_.size(),
               "reshape must preserve the element count");
  rows_ = rows;
  cols_ = cols;
}

void Matrix::fill(double value) noexcept {
  for (double& x : data_) x = value;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  // Blocked transpose for cache behaviour on large inputs.
  constexpr std::size_t kBlock = 32;
  for (std::size_t rb = 0; rb < rows_; rb += kBlock) {
    const std::size_t rend = std::min(rows_, rb + kBlock);
    for (std::size_t cb = 0; cb < cols_; cb += kBlock) {
      const std::size_t cend = std::min(cols_, cb + kBlock);
      for (std::size_t r = rb; r < rend; ++r) {
        for (std::size_t c = cb; c < cend; ++c) {
          out(c, r) = (*this)(r, c);
        }
      }
    }
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  SCWC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "Matrix += shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  SCWC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "Matrix -= shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) noexcept {
  for (double& x : data_) x *= scalar;
  return *this;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (const double x : data_) sum += x * x;
  return std::sqrt(sum);
}

double Matrix::max_abs_diff(const Matrix& other) const {
  SCWC_REQUIRE(rows_ == other.rows_ && cols_ == other.cols_,
               "max_abs_diff shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - other.data_[i]));
  }
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision);
  for (std::size_t r = 0; r < rows_; ++r) {
    os << (r == 0 ? "[[" : " [");
    for (std::size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << (r + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

double dot(std::span<const double> a, std::span<const double> b) noexcept {
  double s = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) s += a[i] * b[i];
  return s;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept {
  const std::size_t n = x.size() < y.size() ? x.size() : y.size();
  for (std::size_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

double norm2(std::span<const double> v) noexcept {
  return std::sqrt(dot(v, v));
}

double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept {
  double s = 0.0;
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace scwc::linalg
