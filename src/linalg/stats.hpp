// Descriptive statistics over matrices and spans.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace scwc::linalg {

/// Arithmetic mean of a span (0 for empty input).
double mean(std::span<const double> v) noexcept;

/// Population variance (divides by n; 0 for n < 1).
double variance(std::span<const double> v) noexcept;

/// Sample standard deviation with Bessel correction (0 for n < 2).
double sample_stddev(std::span<const double> v) noexcept;

/// Per-column means of a matrix (length = cols).
Vector column_means(const Matrix& m);

/// Per-column population standard deviations.
Vector column_stddevs(const Matrix& m);

/// Sample covariance matrix of the columns of `m` (cols×cols), after
/// removing the column means; divides by (rows - 1), or by 1 when rows < 2.
Matrix covariance_matrix(const Matrix& m);

/// Pearson correlation between two equal-length spans (0 when degenerate).
double pearson(std::span<const double> a, std::span<const double> b) noexcept;

/// Minimum and maximum of a span.
struct MinMax {
  double min;
  double max;
};
MinMax min_max(std::span<const double> v) noexcept;

}  // namespace scwc::linalg
