// Matrix-multiply kernels.
//
// One blocked, thread-parallel kernel services all shapes through a small
// trait describing whether either operand is logically transposed — the NN
// backward passes need AᵀB and ABᵀ without materialising transposes.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace scwc::linalg {

/// C = A · B. Shapes: (m×k) · (k×n) → (m×n).
Matrix matmul(const Matrix& a, const Matrix& b);

/// C = Aᵀ · B. Shapes: (k×m)ᵀ · (k×n) → (m×n).
Matrix matmul_at_b(const Matrix& a, const Matrix& b);

/// C = A · Bᵀ. Shapes: (m×k) · (n×k)ᵀ → (m×n).
Matrix matmul_a_bt(const Matrix& a, const Matrix& b);

/// C += A · B (accumulating form; shapes as matmul, C pre-sized).
void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// C += Aᵀ · B.
void matmul_at_b_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// C += A · Bᵀ.
void matmul_a_bt_accumulate(const Matrix& a, const Matrix& b, Matrix& c);

/// y = A · x (m×n times n-vector).
Vector matvec(const Matrix& a, std::span<const double> x);

/// y = Aᵀ · x (m×n transposed times m-vector).
Vector matvec_transposed(const Matrix& a, std::span<const double> x);

/// Gram matrix AᵀA (n×n for an m×n input) — the covariance-feature and
/// PCA front ends both reduce to this product.
Matrix gram_at_a(const Matrix& a);

/// Gram matrix AAᵀ (m×m) — used by PCA's small-side trick.
Matrix gram_a_at(const Matrix& a);

}  // namespace scwc::linalg
