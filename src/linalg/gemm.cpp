#include "linalg/gemm.hpp"

#include <algorithm>

#include "common/thread_pool.hpp"

namespace scwc::linalg {

namespace {

// Cache-blocking parameters: the inner micro-kernel streams over contiguous
// rows of B, accumulating into a contiguous row of C, which keeps all three
// operands in L1/L2 for typical SCWC shapes (hundreds × thousands).
constexpr std::size_t kBlockM = 64;
constexpr std::size_t kBlockN = 256;
constexpr std::size_t kBlockK = 64;

// C[mb, nb] += A[mb, kb] * B[kb, nb] where A is accessed via a row-lambda so
// the same kernel serves normal and transposed A layouts.
template <typename GetA>
void gemm_block(std::size_t m_lo, std::size_t m_hi, std::size_t n,
                std::size_t k, GetA&& a_at, const Matrix& b, Matrix& c) {
  for (std::size_t mb = m_lo; mb < m_hi; mb += kBlockM) {
    const std::size_t m_end = std::min(m_hi, mb + kBlockM);
    for (std::size_t kb = 0; kb < k; kb += kBlockK) {
      const std::size_t k_end = std::min(k, kb + kBlockK);
      for (std::size_t nb = 0; nb < n; nb += kBlockN) {
        const std::size_t n_end = std::min(n, nb + kBlockN);
        for (std::size_t i = mb; i < m_end; ++i) {
          double* crow = c.data() + i * n;
          for (std::size_t p = kb; p < k_end; ++p) {
            const double aval = a_at(i, p);
            if (aval == 0.0) continue;
            const double* brow = b.data() + p * n;
            for (std::size_t j = nb; j < n_end; ++j) {
              crow[j] += aval * brow[j];
            }
          }
        }
      }
    }
  }
}

}  // namespace

void matmul_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  SCWC_REQUIRE(a.cols() == b.rows(), "matmul: inner dimensions differ");
  SCWC_REQUIRE(c.rows() == a.rows() && c.cols() == b.cols(),
               "matmul: output shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t n = b.cols();
  const std::size_t k = a.cols();
  const auto a_at = [&a](std::size_t i, std::size_t p) { return a(i, p); };
  parallel_for_blocked(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        gemm_block(lo, hi, n, k, a_at, b, c);
      },
      kBlockM);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  matmul_accumulate(a, b, c);
  return c;
}

void matmul_at_b_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  SCWC_REQUIRE(a.rows() == b.rows(), "matmul_at_b: inner dimensions differ");
  SCWC_REQUIRE(c.rows() == a.cols() && c.cols() == b.cols(),
               "matmul_at_b: output shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t n = b.cols();
  const std::size_t k = a.rows();
  const auto a_at = [&a](std::size_t i, std::size_t p) { return a(p, i); };
  parallel_for_blocked(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        gemm_block(lo, hi, n, k, a_at, b, c);
      },
      kBlockM);
}

Matrix matmul_at_b(const Matrix& a, const Matrix& b) {
  Matrix c(a.cols(), b.cols());
  matmul_at_b_accumulate(a, b, c);
  return c;
}

void matmul_a_bt_accumulate(const Matrix& a, const Matrix& b, Matrix& c) {
  SCWC_REQUIRE(a.cols() == b.cols(), "matmul_a_bt: inner dimensions differ");
  SCWC_REQUIRE(c.rows() == a.rows() && c.cols() == b.rows(),
               "matmul_a_bt: output shape mismatch");
  // A·Bᵀ: rows of both operands are contiguous, so a dot-product kernel is
  // the cache-friendly formulation here.
  const std::size_t m = a.rows();
  const std::size_t n = b.rows();
  parallel_for_blocked(
      0, m,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          const auto arow = a.row(i);
          double* crow = c.data() + i * n;
          for (std::size_t j = 0; j < n; ++j) {
            crow[j] += dot(arow, b.row(j));
          }
        }
      },
      16);
}

Matrix matmul_a_bt(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.rows());
  matmul_a_bt_accumulate(a, b, c);
  return c;
}

Vector matvec(const Matrix& a, std::span<const double> x) {
  SCWC_REQUIRE(a.cols() == x.size(), "matvec: dimension mismatch");
  Vector y(a.rows(), 0.0);
  parallel_for_blocked(
      0, a.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) y[i] = dot(a.row(i), x);
      },
      64);
  return y;
}

Vector matvec_transposed(const Matrix& a, std::span<const double> x) {
  SCWC_REQUIRE(a.rows() == x.size(), "matvec_transposed: dimension mismatch");
  Vector y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    axpy(x[i], a.row(i), y);
  }
  return y;
}

Matrix gram_at_a(const Matrix& a) { return matmul_at_b(a, a); }

Matrix gram_a_at(const Matrix& a) { return matmul_a_bt(a, a); }

}  // namespace scwc::linalg
