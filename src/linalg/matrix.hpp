// Dense row-major matrix of doubles.
//
// This is the single numeric container shared by the preprocessing, classic
// ML and neural-network modules. It deliberately stays small: owning
// storage, bounds-checked element access in debug flavour, and a handful of
// whole-matrix operations. Heavy kernels (GEMM, eigensolvers) live in
// separate translation units so they can be tuned independently.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace scwc::linalg {

/// Dense row-major matrix. Elements are doubles; storage is contiguous.
class Matrix {
 public:
  Matrix() = default;

  /// rows×cols matrix, zero-initialised.
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  /// rows×cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Row-major construction from nested initialiser lists (tests).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return data_.size(); }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) noexcept {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const noexcept {
    return data_[r * cols_ + c];
  }

  /// Bounds-checked access (used by tests and cold paths).
  double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  [[nodiscard]] double* data() noexcept { return data_.data(); }
  [[nodiscard]] const double* data() const noexcept { return data_.data(); }

  /// View of one row.
  [[nodiscard]] std::span<double> row(std::size_t r) noexcept {
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const noexcept {
    return {data_.data() + r * cols_, cols_};
  }

  /// Whole-storage view (row-major).
  [[nodiscard]] std::span<double> flat() noexcept { return {data_}; }
  [[nodiscard]] std::span<const double> flat() const noexcept { return {data_}; }

  /// Reshapes in place; total element count must be preserved.
  void reshape(std::size_t rows, std::size_t cols);

  /// Sets every element to `value`.
  void fill(double value) noexcept;

  /// Returns the transpose (out-of-place).
  [[nodiscard]] Matrix transposed() const;

  /// Elementwise operations (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar) noexcept;

  friend Matrix operator+(Matrix lhs, const Matrix& rhs) { return lhs += rhs; }
  friend Matrix operator-(Matrix lhs, const Matrix& rhs) { return lhs -= rhs; }
  friend Matrix operator*(Matrix lhs, double s) { return lhs *= s; }
  friend Matrix operator*(double s, Matrix rhs) { return rhs *= s; }

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  /// Max |a_ij - b_ij|; both shapes must match.
  [[nodiscard]] double max_abs_diff(const Matrix& other) const;

  /// Identity matrix of order n.
  static Matrix identity(std::size_t n);

  /// Compact debug rendering (small matrices only).
  [[nodiscard]] std::string to_string(int precision = 4) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// A plain dense vector alias used throughout the ML modules.
using Vector = std::vector<double>;

/// Dot product over equal-length spans.
double dot(std::span<const double> a, std::span<const double> b) noexcept;

/// y += alpha * x (equal lengths).
void axpy(double alpha, std::span<const double> x, std::span<double> y) noexcept;

/// Euclidean norm of a span.
double norm2(std::span<const double> v) noexcept;

/// Squared Euclidean distance between two spans of equal length.
double squared_distance(std::span<const double> a,
                        std::span<const double> b) noexcept;

}  // namespace scwc::linalg
