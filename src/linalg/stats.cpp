#include "linalg/stats.hpp"

#include <cmath>
#include <limits>

namespace scwc::linalg {

double mean(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (const double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(std::span<const double> v) noexcept {
  if (v.empty()) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) {
    const double d = x - m;
    s += d * d;
  }
  return s / static_cast<double>(v.size());
}

double sample_stddev(std::span<const double> v) noexcept {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (const double x : v) {
    const double d = x - m;
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

Vector column_means(const Matrix& m) {
  Vector out(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) out[c] += row[c];
  }
  if (m.rows() > 0) {
    for (double& x : out) x /= static_cast<double>(m.rows());
  }
  return out;
}

Vector column_stddevs(const Matrix& m) {
  const Vector means = column_means(m);
  Vector out(m.cols(), 0.0);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto row = m.row(r);
    for (std::size_t c = 0; c < m.cols(); ++c) {
      const double d = row[c] - means[c];
      out[c] += d * d;
    }
  }
  if (m.rows() > 0) {
    for (double& x : out) x = std::sqrt(x / static_cast<double>(m.rows()));
  }
  return out;
}

Matrix covariance_matrix(const Matrix& m) {
  const std::size_t n = m.rows();
  const std::size_t d = m.cols();
  const Vector means = column_means(m);
  Matrix cov(d, d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = m.row(r);
    for (std::size_t i = 0; i < d; ++i) {
      const double di = row[i] - means[i];
      for (std::size_t j = i; j < d; ++j) {
        cov(i, j) += di * (row[j] - means[j]);
      }
    }
  }
  const double denom = n > 1 ? static_cast<double>(n - 1) : 1.0;
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = i; j < d; ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  }
  return cov;
}

double pearson(std::span<const double> a, std::span<const double> b) noexcept {
  const std::size_t n = a.size() < b.size() ? a.size() : b.size();
  if (n < 2) return 0.0;
  const double ma = mean(a.subspan(0, n));
  const double mb = mean(b.subspan(0, n));
  double num = 0.0;
  double da = 0.0;
  double db = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double xa = a[i] - ma;
    const double xb = b[i] - mb;
    num += xa * xb;
    da += xa * xa;
    db += xb * xb;
  }
  const double denom = std::sqrt(da * db);
  if (denom <= 0.0) return 0.0;
  return num / denom;
}

MinMax min_max(std::span<const double> v) noexcept {
  MinMax mm{std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
  for (const double x : v) {
    if (x < mm.min) mm.min = x;
    if (x > mm.max) mm.max = x;
  }
  if (v.empty()) {
    mm.min = 0.0;
    mm.max = 0.0;
  }
  return mm;
}

}  // namespace scwc::linalg
