#include "linalg/eigen.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/rng.hpp"
#include "linalg/gemm.hpp"

namespace scwc::linalg {

namespace {

void check_symmetric(const Matrix& a, double tol) {
  SCWC_REQUIRE(a.rows() == a.cols(), "eigen: matrix must be square");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = i + 1; j < a.cols(); ++j) {
      SCWC_REQUIRE(std::abs(a(i, j) - a(j, i)) <=
                       tol * (1.0 + std::abs(a(i, j))),
                   "eigen: matrix is not symmetric");
    }
  }
}

// Sorts eigenpairs in place by descending eigenvalue.
EigenResult sort_descending(Vector values, Matrix vectors) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&values](std::size_t a, std::size_t b) {
    return values[a] > values[b];
  });
  Vector sorted_values(n);
  Matrix sorted_vectors(vectors.rows(), n);
  for (std::size_t k = 0; k < n; ++k) {
    sorted_values[k] = values[order[k]];
    for (std::size_t r = 0; r < vectors.rows(); ++r) {
      sorted_vectors(r, k) = vectors(r, order[k]);
    }
  }
  return EigenResult{std::move(sorted_values), std::move(sorted_vectors)};
}

}  // namespace

EigenResult jacobi_eigen(const Matrix& input, double tol,
                         std::size_t max_sweeps, double symmetry_tol) {
  check_symmetric(input, symmetry_tol);
  const std::size_t n = input.rows();
  Matrix a = input;
  Matrix v = Matrix::identity(n);

  const auto off_diagonal_norm = [&a, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    }
    return std::sqrt(2.0 * s);
  };
  const double scale = std::max(1.0, a.frobenius_norm());

  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        // Stable tangent of the rotation angle.
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;

        for (std::size_t i = 0; i < n; ++i) {
          const double aip = a(i, p);
          const double aiq = a(i, q);
          a(i, p) = c * aip - s * aiq;
          a(i, q) = s * aip + c * aiq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double api = a(p, i);
          const double aqi = a(q, i);
          a(p, i) = c * api - s * aqi;
          a(q, i) = s * api + c * aqi;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const double vip = v(i, p);
          const double viq = v(i, q);
          v(i, p) = c * vip - s * viq;
          v(i, q) = s * vip + c * viq;
        }
      }
    }
  }

  Vector values(n);
  for (std::size_t i = 0; i < n; ++i) values[i] = a(i, i);
  return sort_descending(std::move(values), std::move(v));
}

Matrix orthonormalize_columns(const Matrix& a, std::uint64_t seed) {
  const std::size_t n = a.rows();
  const std::size_t k = a.cols();
  Matrix q = a;
  Rng rng(seed);
  for (std::size_t j = 0; j < k; ++j) {
    // Two rounds of modified Gram–Schmidt for numerical orthogonality.
    for (int round = 0; round < 2; ++round) {
      for (std::size_t prev = 0; prev < j; ++prev) {
        double proj = 0.0;
        for (std::size_t r = 0; r < n; ++r) proj += q(r, j) * q(r, prev);
        for (std::size_t r = 0; r < n; ++r) q(r, j) -= proj * q(r, prev);
      }
    }
    double nrm = 0.0;
    for (std::size_t r = 0; r < n; ++r) nrm += q(r, j) * q(r, j);
    nrm = std::sqrt(nrm);
    if (nrm < 1e-12) {
      // Column is linearly dependent — replace with a random direction and
      // redo the orthogonalisation for this column.
      for (std::size_t r = 0; r < n; ++r) q(r, j) = rng.normal();
      --j;  // retry
      continue;
    }
    for (std::size_t r = 0; r < n; ++r) q(r, j) /= nrm;
  }
  return q;
}

EigenResult topk_eigen(const Matrix& a, std::size_t k, std::size_t max_iters,
                       double tol, std::uint64_t seed) {
  SCWC_REQUIRE(a.rows() == a.cols(), "topk_eigen: matrix must be square");
  const std::size_t n = a.rows();
  k = std::min(k, n);
  if (k == 0) return EigenResult{{}, Matrix(n, 0)};

  // Small problems — or large requested fractions of the spectrum, where
  // subspace iteration would run a comparably sized Rayleigh–Ritz solve on
  // every iteration anyway — run Jacobi once and truncate.
  if (n <= 160 || k + 8 >= n || (n <= 768 && 4 * k >= n)) {
    EigenResult full = jacobi_eigen(a, 1e-12, 64, 1e-6);
    Vector values(full.values.begin(),
                  full.values.begin() + static_cast<std::ptrdiff_t>(k));
    Matrix vectors(n, k);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < k; ++c) vectors(r, c) = full.vectors(r, c);
    }
    return EigenResult{std::move(values), std::move(vectors)};
  }

  // Block subspace iteration with a modest oversampling margin.
  const std::size_t block = std::min(n, k + std::min<std::size_t>(10, n - k));
  Matrix q(n, block);
  Rng rng(seed);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < block; ++c) q(r, c) = rng.normal();
  }
  q = orthonormalize_columns(q, seed + 1);

  Vector prev_ritz(block, 0.0);
  Matrix ritz_vectors(n, block);
  Vector ritz_values(block, 0.0);

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    Matrix z = matmul(a, q);           // n×block
    q = orthonormalize_columns(z, seed + 2 + iter);

    // Rayleigh–Ritz: project A into the subspace and solve the small
    // symmetric problem exactly.
    Matrix aq = matmul(a, q);          // n×block
    Matrix small = matmul_at_b(q, aq); // block×block
    // Symmetrise to wash out round-off before Jacobi.
    for (std::size_t i = 0; i < block; ++i) {
      for (std::size_t j = i + 1; j < block; ++j) {
        const double avg = 0.5 * (small(i, j) + small(j, i));
        small(i, j) = avg;
        small(j, i) = avg;
      }
    }
    const EigenResult sub = jacobi_eigen(small);
    ritz_values = sub.values;
    ritz_vectors = matmul(q, sub.vectors);  // n×block

    double delta = 0.0;
    double scale = 0.0;
    for (std::size_t i = 0; i < k; ++i) {
      delta = std::max(delta, std::abs(ritz_values[i] - prev_ritz[i]));
      scale = std::max(scale, std::abs(ritz_values[i]));
    }
    prev_ritz = ritz_values;
    q = ritz_vectors;
    if (delta <= tol * std::max(1.0, scale)) break;
  }

  Vector values(ritz_values.begin(),
                ritz_values.begin() + static_cast<std::ptrdiff_t>(k));
  Matrix vectors(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < k; ++c) vectors(r, c) = ritz_vectors(r, c);
  }
  return EigenResult{std::move(values), std::move(vectors)};
}

}  // namespace scwc::linalg
