// Symmetric eigensolvers.
//
// PCA needs the leading eigenpairs of a covariance/Gram matrix. Two solvers
// cover the size spectrum:
//  * cyclic Jacobi — full spectrum, robust, O(n^3) per sweep; used for
//    small matrices (sensor covariances, tests, and as the Rayleigh–Ritz
//    inner solve), and
//  * block subspace iteration with Rayleigh–Ritz — leading k eigenpairs of
//    large symmetric matrices without forming the full spectrum.
#pragma once

#include <cstddef>

#include "linalg/matrix.hpp"

namespace scwc::linalg {

/// Eigen decomposition result: `values[i]` pairs with column i of `vectors`,
/// sorted by descending eigenvalue.
struct EigenResult {
  Vector values;
  Matrix vectors;  ///< n×k, orthonormal columns
};

/// Full eigen decomposition of a symmetric matrix via cyclic Jacobi.
///
/// Intended for small/medium n (≤ a few hundred). `a` must be symmetric
/// within `symmetry_tol` or the call throws.
EigenResult jacobi_eigen(const Matrix& a, double tol = 1e-12,
                         std::size_t max_sweeps = 64,
                         double symmetry_tol = 1e-8);

/// Leading-k eigen decomposition of a symmetric PSD matrix via block
/// subspace iteration (power iterations on a k-dimensional block with
/// QR re-orthogonalisation and a Rayleigh–Ritz projection).
///
/// `k` is clamped to n. Deterministic for a fixed `seed`.
EigenResult topk_eigen(const Matrix& a, std::size_t k,
                       std::size_t max_iters = 100, double tol = 1e-9,
                       std::uint64_t seed = 12345);

/// Thin QR (Gram–Schmidt with re-orthogonalisation) returning Q with
/// orthonormal columns spanning the columns of `a`. Rank deficiencies are
/// patched with fresh random directions so Q always has full column rank.
Matrix orthonormalize_columns(const Matrix& a, std::uint64_t seed = 999);

}  // namespace scwc::linalg
