// The paper's preprocessing pipeline: flatten → StandardScaler → one of
// {PCA(k), covariance features}. Fit on the training tensor only; the test
// tensor is transformed with the fitted parameters (no leakage through the
// scaler or the PCA basis).
#pragma once

#include <optional>
#include <string>

#include "data/tensor3.hpp"
#include "preprocess/covariance_features.hpp"
#include "preprocess/pca.hpp"
#include "preprocess/scaler.hpp"

namespace scwc::preprocess {

/// Which dimensionality-reduction arm of Section IV to apply.
enum class Reduction { kPca, kCovariance, kNone };

/// Name used in tables ("PCA", "Cov.", "raw").
std::string reduction_name(Reduction reduction);

/// Configuration for the classical-ML feature pipeline.
struct FeaturePipelineConfig {
  Reduction reduction = Reduction::kCovariance;
  std::size_t pca_components = 28;  ///< used when reduction == kPca
};

/// Stateful pipeline: fit() learns scaler (and PCA basis) from the training
/// tensor; transform() featurises any tensor of the same shape.
class FeaturePipeline {
 public:
  explicit FeaturePipeline(FeaturePipelineConfig config) : config_(config) {}

  void fit(const data::Tensor3& x_train);
  [[nodiscard]] linalg::Matrix transform(const data::Tensor3& x) const;
  [[nodiscard]] linalg::Matrix fit_transform(const data::Tensor3& x_train);

  /// Width of the produced feature matrix (valid after fit()).
  [[nodiscard]] std::size_t output_dim() const;

  [[nodiscard]] const FeaturePipelineConfig& config() const noexcept {
    return config_;
  }

  /// Fitted geometry and parameters — the serve layer's bundle persistence
  /// reads these (and restore() writes them back).
  [[nodiscard]] bool fitted() const noexcept { return scaler_.fitted(); }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t sensors() const noexcept { return sensors_; }
  [[nodiscard]] const StandardScaler& scaler() const noexcept {
    return scaler_;
  }
  [[nodiscard]] const std::optional<Pca>& pca() const noexcept { return pca_; }

  /// Rebuilds a fitted pipeline from previously extracted parts. A kPca
  /// pipeline must come with a fitted Pca whose component count matches the
  /// config; the other reductions must come without one.
  [[nodiscard]] static FeaturePipeline restore(FeaturePipelineConfig config,
                                               std::size_t steps,
                                               std::size_t sensors,
                                               StandardScaler scaler,
                                               std::optional<Pca> pca);

 private:
  FeaturePipelineConfig config_;
  std::size_t steps_ = 0;
  std::size_t sensors_ = 0;
  StandardScaler scaler_;
  std::optional<Pca> pca_;
};

}  // namespace scwc::preprocess
