// The paper's preprocessing pipeline: flatten → StandardScaler → one of
// {PCA(k), covariance features}. Fit on the training tensor only; the test
// tensor is transformed with the fitted parameters (no leakage through the
// scaler or the PCA basis).
#pragma once

#include <optional>
#include <string>

#include "data/tensor3.hpp"
#include "preprocess/covariance_features.hpp"
#include "preprocess/pca.hpp"
#include "preprocess/scaler.hpp"

namespace scwc::preprocess {

/// Which dimensionality-reduction arm of Section IV to apply.
enum class Reduction { kPca, kCovariance, kNone };

/// Name used in tables ("PCA", "Cov.", "raw").
std::string reduction_name(Reduction reduction);

/// Configuration for the classical-ML feature pipeline.
struct FeaturePipelineConfig {
  Reduction reduction = Reduction::kCovariance;
  std::size_t pca_components = 28;  ///< used when reduction == kPca
};

/// Stateful pipeline: fit() learns scaler (and PCA basis) from the training
/// tensor; transform() featurises any tensor of the same shape.
class FeaturePipeline {
 public:
  explicit FeaturePipeline(FeaturePipelineConfig config) : config_(config) {}

  void fit(const data::Tensor3& x_train);
  [[nodiscard]] linalg::Matrix transform(const data::Tensor3& x) const;
  [[nodiscard]] linalg::Matrix fit_transform(const data::Tensor3& x_train);

  /// Width of the produced feature matrix (valid after fit()).
  [[nodiscard]] std::size_t output_dim() const;

  [[nodiscard]] const FeaturePipelineConfig& config() const noexcept {
    return config_;
  }

 private:
  FeaturePipelineConfig config_;
  std::size_t steps_ = 0;
  std::size_t sensors_ = 0;
  StandardScaler scaler_;
  std::optional<Pca> pca_;
};

}  // namespace scwc::preprocess
