// Covariance dimensionality reduction — the paper's second arm.
//
// "given a single trial M ∈ R^{540×7} … we computed the covariance matrix
//  with respect to the seven sensors, MᵀM ∈ R^{7×7}. As MᵀM is symmetric,
//  we further reduced the dimensions of each trial by taking the upper
//  triangular portion … stacked into a single row vector in R^28."
//
// The transform maps a (trials, steps, sensors) tensor to a trials×28
// matrix. The feature names (var(a), cov(a,b)) are exposed so the XGBoost
// feature-importance analysis of §IV-B can report them by name.
#pragma once

#include <string>
#include <vector>

#include "data/tensor3.hpp"
#include "linalg/matrix.hpp"

namespace scwc::preprocess {

/// Number of upper-triangle entries for s sensors: s(s+1)/2.
constexpr std::size_t covariance_feature_count(std::size_t sensors) noexcept {
  return sensors * (sensors + 1) / 2;
}

/// Computes MᵀM for one trial matrix (steps × sensors) and flattens the
/// upper triangle row-wise into `dest` (size sensors(sensors+1)/2).
void covariance_features_of_trial(const linalg::Matrix& trial,
                                  std::span<double> dest);

/// Applies the reduction to every trial of a tensor → trials×28 (for 7
/// sensors). Trials are processed in parallel.
linalg::Matrix covariance_features(const data::Tensor3& x);

/// Same, but starting from an already-flattened trials×(steps·sensors)
/// matrix (the pipeline standardises in flattened form first).
linalg::Matrix covariance_features_flat(const linalg::Matrix& flat,
                                        std::size_t steps,
                                        std::size_t sensors);

/// Human-readable name of covariance feature i for s sensors, e.g.
/// "var(utilization_gpu_pct)" or "cov(utilization_gpu_pct, power_draw_W)".
std::string covariance_feature_name(std::size_t index, std::size_t sensors);

/// The (row, col) sensor pair encoded by upper-triangle index i.
std::pair<std::size_t, std::size_t> covariance_feature_pair(
    std::size_t index, std::size_t sensors);

}  // namespace scwc::preprocess
