#include "preprocess/scaler.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/stats.hpp"

namespace scwc::preprocess {

void StandardScaler::fit(const linalg::Matrix& x) {
  SCWC_REQUIRE(x.rows() > 0, "StandardScaler::fit needs at least one row");
  means_ = linalg::column_means(x);
  scales_ = linalg::column_stddevs(x);  // population std, like scikit-learn
  for (double& s : scales_) {
    if (s <= 0.0 || !std::isfinite(s)) s = 1.0;
  }
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  SCWC_REQUIRE(fitted(), "StandardScaler used before fit()");
  SCWC_REQUIRE(x.cols() == means_.size(),
               "StandardScaler width mismatch with fitted data");
  linalg::Matrix out(x.rows(), x.cols());
  parallel_for_blocked(
      0, x.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const auto src = x.row(r);
          auto dst = out.row(r);
          for (std::size_t c = 0; c < x.cols(); ++c) {
            dst[c] = (src[c] - means_[c]) / scales_[c];
          }
        }
      },
      256);
  return out;
}

linalg::Matrix StandardScaler::fit_transform(const linalg::Matrix& x) {
  fit(x);
  return transform(x);
}

linalg::Matrix StandardScaler::inverse_transform(const linalg::Matrix& x) const {
  SCWC_REQUIRE(fitted(), "StandardScaler used before fit()");
  SCWC_REQUIRE(x.cols() == means_.size(),
               "StandardScaler width mismatch with fitted data");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dst[c] = src[c] * scales_[c] + means_[c];
    }
  }
  return out;
}

}  // namespace scwc::preprocess
