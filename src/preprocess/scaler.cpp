#include "preprocess/scaler.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "linalg/stats.hpp"

namespace scwc::preprocess {

void StandardScaler::fit(const linalg::Matrix& x) {
  SCWC_REQUIRE(x.rows() > 0, "StandardScaler::fit needs at least one row");
  means_ = linalg::column_means(x);
  // A non-finite mean can only come from NaN/Inf input; refuse it here with
  // column context rather than silently baking NaN into every transform.
  for (std::size_t c = 0; c < means_.size(); ++c) {
    SCWC_REQUIRE(std::isfinite(means_[c]),
                 "StandardScaler::fit: non-finite mean in column " +
                     std::to_string(c) +
                     " — input contains NaN/Inf (impute before fitting, "
                     "see robust/robust_window.hpp)");
  }
  scales_ = linalg::column_stddevs(x);  // population std, like scikit-learn
  for (double& s : scales_) {
    if (s <= 0.0 || !std::isfinite(s)) s = 1.0;  // constant/overflowed column
  }
}

StandardScaler StandardScaler::restore(linalg::Vector means,
                                       linalg::Vector scales) {
  SCWC_REQUIRE(!means.empty() && means.size() == scales.size(),
               "StandardScaler::restore: means/scales length mismatch");
  for (std::size_t c = 0; c < means.size(); ++c) {
    SCWC_REQUIRE(std::isfinite(means[c]),
                 "StandardScaler::restore: non-finite mean in column " +
                     std::to_string(c));
    SCWC_REQUIRE(std::isfinite(scales[c]) && scales[c] > 0.0,
                 "StandardScaler::restore: non-positive scale in column " +
                     std::to_string(c));
  }
  StandardScaler out;
  out.means_ = std::move(means);
  out.scales_ = std::move(scales);
  return out;
}

linalg::Matrix StandardScaler::transform(const linalg::Matrix& x) const {
  SCWC_REQUIRE(fitted(), "StandardScaler used before fit()");
  SCWC_REQUIRE(x.cols() == means_.size(),
               "StandardScaler width mismatch with fitted data");
  linalg::Matrix out(x.rows(), x.cols());
  parallel_for_blocked(
      0, x.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t r = lo; r < hi; ++r) {
          const auto src = x.row(r);
          auto dst = out.row(r);
          for (std::size_t c = 0; c < x.cols(); ++c) {
            dst[c] = (src[c] - means_[c]) / scales_[c];
          }
        }
      },
      256);
  return out;
}

linalg::Matrix StandardScaler::fit_transform(const linalg::Matrix& x) {
  fit(x);
  return transform(x);
}

linalg::Matrix StandardScaler::inverse_transform(const linalg::Matrix& x) const {
  SCWC_REQUIRE(fitted(), "StandardScaler used before fit()");
  SCWC_REQUIRE(x.cols() == means_.size(),
               "StandardScaler width mismatch with fitted data");
  linalg::Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dst[c] = src[c] * scales_[c] + means_[c];
    }
  }
  return out;
}

}  // namespace scwc::preprocess
