#include "preprocess/pipeline.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scwc::preprocess {

std::string reduction_name(Reduction reduction) {
  switch (reduction) {
    case Reduction::kPca:
      return "PCA";
    case Reduction::kCovariance:
      return "Cov.";
    case Reduction::kNone:
      return "raw";
  }
  return "?";
}

void FeaturePipeline::fit(const data::Tensor3& x_train) {
  const obs::TraceSpan fit_span("pipeline.fit");
  obs::MetricsRegistry::global()
      .counter("scwc_preprocess_fits_total")
      .inc();
  steps_ = x_train.steps();
  sensors_ = x_train.sensors();
  const linalg::Matrix flat = x_train.flatten();
  const linalg::Matrix scaled = [&] {
    const obs::TraceSpan scale_span("pipeline.scale");
    scaler_.fit(flat);
    return scaler_.transform(flat);
  }();
  if (config_.reduction == Reduction::kPca) {
    const obs::TraceSpan pca_span("pipeline.pca_fit");
    pca_.emplace(config_.pca_components);
    pca_->fit(scaled);
  }
}

linalg::Matrix FeaturePipeline::transform(const data::Tensor3& x) const {
  SCWC_REQUIRE(scaler_.fitted(), "FeaturePipeline used before fit()");
  SCWC_REQUIRE(x.steps() == steps_ && x.sensors() == sensors_,
               "tensor shape differs from the fitted shape");
  const obs::TraceSpan transform_span("pipeline.transform");
  obs::MetricsRegistry::global()
      .counter("scwc_preprocess_transforms_total")
      .inc();
  const linalg::Matrix scaled = [&] {
    const obs::TraceSpan scale_span("pipeline.scale");
    return scaler_.transform(x.flatten());
  }();
  switch (config_.reduction) {
    case Reduction::kPca: {
      const obs::TraceSpan reduce_span("pipeline.pca_project");
      return pca_->transform(scaled);
    }
    case Reduction::kCovariance: {
      const obs::TraceSpan reduce_span("pipeline.covariance");
      return covariance_features_flat(scaled, steps_, sensors_);
    }
    case Reduction::kNone:
      return scaled;
  }
  SCWC_FAIL("unhandled reduction");
}

FeaturePipeline FeaturePipeline::restore(FeaturePipelineConfig config,
                                         std::size_t steps,
                                         std::size_t sensors,
                                         StandardScaler scaler,
                                         std::optional<Pca> pca) {
  SCWC_REQUIRE(steps > 0 && sensors > 0,
               "FeaturePipeline::restore: empty window geometry");
  SCWC_REQUIRE(scaler.fitted(), "FeaturePipeline::restore: unfitted scaler");
  SCWC_REQUIRE(scaler.means().size() == steps * sensors,
               "FeaturePipeline::restore: scaler width differs from "
               "steps × sensors");
  if (config.reduction == Reduction::kPca) {
    SCWC_REQUIRE(pca.has_value() && pca->fitted(),
                 "FeaturePipeline::restore: kPca pipeline needs a fitted PCA");
    SCWC_REQUIRE(pca->mean().size() == steps * sensors,
                 "FeaturePipeline::restore: PCA width differs from "
                 "steps × sensors");
    config.pca_components = pca->components();
  } else {
    SCWC_REQUIRE(!pca.has_value(),
                 "FeaturePipeline::restore: PCA supplied for a non-PCA "
                 "reduction");
  }
  FeaturePipeline out(config);
  out.steps_ = steps;
  out.sensors_ = sensors;
  out.scaler_ = std::move(scaler);
  out.pca_ = std::move(pca);
  return out;
}

linalg::Matrix FeaturePipeline::fit_transform(const data::Tensor3& x_train) {
  fit(x_train);
  return transform(x_train);
}

std::size_t FeaturePipeline::output_dim() const {
  SCWC_REQUIRE(scaler_.fitted(), "FeaturePipeline used before fit()");
  switch (config_.reduction) {
    case Reduction::kPca:
      return pca_->components();
    case Reduction::kCovariance:
      return covariance_feature_count(sensors_);
    case Reduction::kNone:
      return steps_ * sensors_;
  }
  SCWC_FAIL("unhandled reduction");
}

}  // namespace scwc::preprocess
