#include "preprocess/pca.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/error.hpp"
#include "linalg/gemm.hpp"
#include "linalg/stats.hpp"

namespace scwc::preprocess {

void Pca::fit(const linalg::Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t d = x.cols();
  SCWC_REQUIRE(n >= 2, "PCA needs at least two samples");
  const std::size_t k = std::min({components_, n, d});
  SCWC_REQUIRE(k > 0, "PCA with zero components");

  mean_ = linalg::column_means(x);
  // Non-finite means indicate NaN/Inf input; fail before the eigensolver
  // grinds on garbage and returns a poisoned basis.
  for (std::size_t c = 0; c < d; ++c) {
    SCWC_REQUIRE(std::isfinite(mean_[c]),
                 "PCA::fit: non-finite mean in column " + std::to_string(c) +
                     " — input contains NaN/Inf (impute before fitting)");
  }
  linalg::Matrix centered(n, d);
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = x.row(r);
    auto dst = centered.row(r);
    for (std::size_t c = 0; c < d; ++c) dst[c] = src[c] - mean_[c];
  }

  const double denom = static_cast<double>(n - 1);
  components_matrix_ = linalg::Matrix(d, k);
  explained_variance_.assign(k, 0.0);

  double total_variance = 0.0;
  {
    // Total variance = sum of column variances of the centered matrix.
    for (std::size_t c = 0; c < d; ++c) {
      double s = 0.0;
      for (std::size_t r = 0; r < n; ++r) {
        const double v = centered(r, c);
        s += v * v;
      }
      total_variance += s / denom;
    }
  }

  if (d <= n) {
    // Feature-side covariance: C = XᵀX/(n-1), eigenvectors are directly the
    // principal directions.
    linalg::Matrix cov = linalg::gram_at_a(centered);
    cov *= 1.0 / denom;
    const linalg::EigenResult eig = linalg::topk_eigen(cov, k, 60, 1e-7);
    for (std::size_t j = 0; j < k; ++j) {
      explained_variance_[j] = std::max(0.0, eig.values[j]);
      for (std::size_t r = 0; r < d; ++r) {
        components_matrix_(r, j) = eig.vectors(r, j);
      }
    }
  } else {
    // Sample-side Gram trick: G = XXᵀ/(n-1) shares nonzero eigenvalues with
    // the covariance; directions are recovered as v = Xᵀu / sqrt(λ(n-1)).
    linalg::Matrix gram = linalg::gram_a_at(centered);
    gram *= 1.0 / denom;
    const linalg::EigenResult eig = linalg::topk_eigen(gram, k, 60, 1e-7);
    for (std::size_t j = 0; j < k; ++j) {
      const double lambda = std::max(0.0, eig.values[j]);
      explained_variance_[j] = lambda;
      linalg::Vector u(n);
      for (std::size_t r = 0; r < n; ++r) u[r] = eig.vectors(r, j);
      linalg::Vector v = linalg::matvec_transposed(centered, u);
      const double scale = std::sqrt(lambda * denom);
      const double inv = scale > 1e-12 ? 1.0 / scale : 0.0;
      for (std::size_t r = 0; r < d; ++r) {
        components_matrix_(r, j) = v[r] * inv;
      }
    }
  }

  explained_variance_ratio_.assign(k, 0.0);
  if (total_variance > 0.0) {
    for (std::size_t j = 0; j < k; ++j) {
      explained_variance_ratio_[j] = explained_variance_[j] / total_variance;
    }
  }
  fitted_k_ = k;
}

Pca Pca::restore(linalg::Vector mean, linalg::Matrix components,
                 linalg::Vector explained_variance,
                 linalg::Vector explained_variance_ratio) {
  const std::size_t d = mean.size();
  const std::size_t k = components.cols();
  SCWC_REQUIRE(d > 0 && k > 0, "Pca::restore: empty parameters");
  SCWC_REQUIRE(components.rows() == d,
               "Pca::restore: components matrix height differs from mean");
  SCWC_REQUIRE(explained_variance.size() == k &&
                   explained_variance_ratio.size() == k,
               "Pca::restore: variance vector length differs from k");
  for (const double v : mean) {
    SCWC_REQUIRE(std::isfinite(v), "Pca::restore: non-finite mean entry");
  }
  for (const double v : components.flat()) {
    SCWC_REQUIRE(std::isfinite(v), "Pca::restore: non-finite component");
  }
  Pca out(k);
  out.fitted_k_ = k;
  out.mean_ = std::move(mean);
  out.components_matrix_ = std::move(components);
  out.explained_variance_ = std::move(explained_variance);
  out.explained_variance_ratio_ = std::move(explained_variance_ratio);
  return out;
}

linalg::Matrix Pca::transform(const linalg::Matrix& x) const {
  SCWC_REQUIRE(fitted(), "PCA used before fit()");
  SCWC_REQUIRE(x.cols() == mean_.size(), "PCA width mismatch");
  linalg::Matrix centered(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    auto dst = centered.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) dst[c] = src[c] - mean_[c];
  }
  linalg::Matrix z = linalg::matmul(centered, components_matrix_);
  // NaN/Inf input survives the GEMM as non-finite projections; reject them
  // with row context instead of handing poisoned features downstream.
  for (std::size_t r = 0; r < z.rows(); ++r) {
    for (const double v : z.row(r)) {
      SCWC_REQUIRE(std::isfinite(v),
                   "PCA::transform: non-finite projection for row " +
                       std::to_string(r) +
                       " — input contains NaN/Inf (impute first)");
    }
  }
  return z;
}

linalg::Matrix Pca::fit_transform(const linalg::Matrix& x) {
  fit(x);
  return transform(x);
}

linalg::Matrix Pca::inverse_transform(const linalg::Matrix& z) const {
  SCWC_REQUIRE(fitted(), "PCA used before fit()");
  SCWC_REQUIRE(z.cols() == fitted_k_, "inverse_transform width mismatch");
  linalg::Matrix x = linalg::matmul_a_bt(z, components_matrix_);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) row[c] += mean_[c];
  }
  return x;
}

}  // namespace scwc::preprocess
