#include "preprocess/covariance_features.hpp"

#include <cmath>
#include <sstream>
#include <string>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "telemetry/architectures.hpp"

namespace scwc::preprocess {

namespace {

// Upper triangle of (steps×sensors)ᵀ(steps×sensors) from a contiguous
// row-major trial block.
void reduce_block(std::span<const double> trial, std::size_t steps,
                  std::size_t sensors, std::span<double> dest) {
  std::size_t k = 0;
  for (std::size_t i = 0; i < sensors; ++i) {
    for (std::size_t j = i; j < sensors; ++j) {
      double s = 0.0;
      const double* p = trial.data();
      for (std::size_t t = 0; t < steps; ++t, p += sensors) {
        s += p[i] * p[j];
      }
      dest[k++] = s;
    }
  }
}

// NaN/Inf anywhere in a trial propagates into its covariance sums, so this
// O(sensors²) scan of the 28-dim output detects non-finite *input* at a
// fraction of the reduction's own cost — and stops it from flowing into the
// classifiers as silently-poisoned features.
void require_finite_features(std::span<const double> dest,
                             std::size_t trial) {
  for (const double v : dest) {
    SCWC_REQUIRE(std::isfinite(v),
                 "covariance features: non-finite result for trial " +
                     std::to_string(trial) +
                     " — input window contains NaN/Inf (impute first, see "
                     "robust/robust_window.hpp)");
  }
}

}  // namespace

void covariance_features_of_trial(const linalg::Matrix& trial,
                                  std::span<double> dest) {
  const std::size_t sensors = trial.cols();
  SCWC_REQUIRE(dest.size() == covariance_feature_count(sensors),
               "covariance feature destination has the wrong size");
  reduce_block(trial.flat(), trial.rows(), sensors, dest);
  require_finite_features(dest, 0);
}

linalg::Matrix covariance_features(const data::Tensor3& x) {
  const std::size_t features = covariance_feature_count(x.sensors());
  linalg::Matrix out(x.trials(), features);
  parallel_for_blocked(
      0, x.trials(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          reduce_block(x.trial(i), x.steps(), x.sensors(), out.row(i));
          require_finite_features(out.row(i), i);
        }
      },
      32);
  return out;
}

linalg::Matrix covariance_features_flat(const linalg::Matrix& flat,
                                        std::size_t steps,
                                        std::size_t sensors) {
  SCWC_REQUIRE(flat.cols() == steps * sensors,
               "flattened width must be steps*sensors");
  const std::size_t features = covariance_feature_count(sensors);
  linalg::Matrix out(flat.rows(), features);
  parallel_for_blocked(
      0, flat.rows(),
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          reduce_block(flat.row(i), steps, sensors, out.row(i));
          require_finite_features(out.row(i), i);
        }
      },
      32);
  return out;
}

std::pair<std::size_t, std::size_t> covariance_feature_pair(
    std::size_t index, std::size_t sensors) {
  SCWC_REQUIRE(index < covariance_feature_count(sensors),
               "covariance feature index out of range");
  std::size_t k = 0;
  for (std::size_t i = 0; i < sensors; ++i) {
    for (std::size_t j = i; j < sensors; ++j) {
      if (k == index) return {i, j};
      ++k;
    }
  }
  SCWC_FAIL("unreachable");
}

std::string covariance_feature_name(std::size_t index, std::size_t sensors) {
  const auto [i, j] = covariance_feature_pair(index, sensors);
  std::ostringstream os;
  if (i == j) {
    os << "var(" << telemetry::gpu_sensor_name(i) << ")";
  } else {
    os << "cov(" << telemetry::gpu_sensor_name(i) << ", "
       << telemetry::gpu_sensor_name(j) << ")";
  }
  return os.str();
}

}  // namespace scwc::preprocess
