// Principal component analysis.
//
// The paper's first dimensionality-reduction arm: each trial is reshaped to
// a 3,780-vector, standardised, and projected onto the leading k principal
// components (grid over k ∈ {28, 64, 256, 512}).
//
// Implementation notes: the covariance eigenproblem is solved on whichever
// Gram side is smaller — XᵀX (d×d) when features are few, XXᵀ (n×n) when
// trials are few — and eigenpairs come from block subspace iteration, so
// fitting k=512 components of a 3,780-dim problem never forms the full
// spectrum.
#pragma once

#include <cstddef>

#include "linalg/eigen.hpp"
#include "linalg/matrix.hpp"

namespace scwc::preprocess {

/// Truncated PCA (fit/transform interface mirroring scikit-learn).
class Pca {
 public:
  /// Prepares a PCA that will keep `components` directions.
  explicit Pca(std::size_t components) : components_(components) {}

  /// Learns the mean and the leading principal directions of `x`
  /// (rows = samples). `components` is clamped to min(rows, cols).
  void fit(const linalg::Matrix& x);

  /// Projects rows of `x` onto the fitted components → (rows × k).
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;

  /// fit() then transform().
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x);

  /// Reconstructs from component space back to the original space.
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& z) const;

  [[nodiscard]] bool fitted() const noexcept { return !mean_.empty(); }
  [[nodiscard]] std::size_t components() const noexcept { return fitted_k_; }

  /// Per-feature mean subtracted before projection (valid after fit()).
  [[nodiscard]] const linalg::Vector& mean() const noexcept { return mean_; }

  /// Rebuilds a fitted PCA from previously extracted parameters (the
  /// model-bundle persistence path). `components` is d×k with d ==
  /// mean.size(); the variance vectors must have k entries each.
  [[nodiscard]] static Pca restore(linalg::Vector mean,
                                   linalg::Matrix components,
                                   linalg::Vector explained_variance,
                                   linalg::Vector explained_variance_ratio);

  /// Variance captured by each kept component, descending.
  [[nodiscard]] const linalg::Vector& explained_variance() const noexcept {
    return explained_variance_;
  }
  /// Fraction of total variance captured by each kept component.
  [[nodiscard]] const linalg::Vector& explained_variance_ratio() const noexcept {
    return explained_variance_ratio_;
  }
  /// d×k matrix of principal directions (columns).
  [[nodiscard]] const linalg::Matrix& components_matrix() const noexcept {
    return components_matrix_;
  }

 private:
  std::size_t components_ = 0;
  std::size_t fitted_k_ = 0;
  linalg::Vector mean_;
  linalg::Matrix components_matrix_;  // d × k
  linalg::Vector explained_variance_;
  linalg::Vector explained_variance_ratio_;
};

}  // namespace scwc::preprocess
