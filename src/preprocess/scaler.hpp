// Column standardisation — scikit-learn's StandardScaler semantics.
//
// The paper standardises each flattened trial matrix (trials × 3780)
// column-wise before either PCA or covariance reduction: "standardization
// was performed using Scikit-learn's StandardScaler class, with
// standardization being applied before either covariance or PCA
// dimensionality reduction."
#pragma once

#include "linalg/matrix.hpp"

namespace scwc::preprocess {

/// Per-column zero-mean/unit-variance transform fit on training data.
class StandardScaler {
 public:
  /// Learns per-column mean and standard deviation. Constant columns get a
  /// unit scale so transform() is total (matches scikit-learn).
  void fit(const linalg::Matrix& x);

  /// (x - mean) / std, column-wise. Requires fit() and matching width.
  [[nodiscard]] linalg::Matrix transform(const linalg::Matrix& x) const;

  /// fit() then transform() on the same matrix.
  [[nodiscard]] linalg::Matrix fit_transform(const linalg::Matrix& x);

  /// Inverse transform (x * std + mean).
  [[nodiscard]] linalg::Matrix inverse_transform(const linalg::Matrix& x) const;

  [[nodiscard]] bool fitted() const noexcept { return !means_.empty(); }
  [[nodiscard]] const linalg::Vector& means() const noexcept { return means_; }
  [[nodiscard]] const linalg::Vector& scales() const noexcept { return scales_; }

  /// Rebuilds a fitted scaler from previously extracted parameters (the
  /// model-bundle persistence path). Lengths must match and scales must be
  /// finite and positive, as fit() guarantees.
  [[nodiscard]] static StandardScaler restore(linalg::Vector means,
                                              linalg::Vector scales);

 private:
  linalg::Vector means_;
  linalg::Vector scales_;
};

}  // namespace scwc::preprocess
