#include "data/npz.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scwc::data {

namespace {

std::array<std::uint32_t, 256> build_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v & 0xFF));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFF));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = build_crc_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : bytes) {
    c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::uint8_t> npy_encode(const std::string& descr,
                                     const std::vector<std::size_t>& shape,
                                     std::span<const std::uint8_t> payload) {
  std::ostringstream header;
  header << "{'descr': '" << descr << "', 'fortran_order': False, 'shape': (";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    header << shape[i];
    if (shape.size() == 1 || i + 1 < shape.size()) header << ",";
    if (i + 1 < shape.size()) header << " ";
  }
  header << "), }";
  std::string h = header.str();
  // Pad with spaces so magic(6)+version(2)+len(2)+header is 64-aligned and
  // the header ends with a newline, per the NPY v1.0 spec.
  const std::size_t base = 6 + 2 + 2;
  const std::size_t total = ((base + h.size() + 1 + 63) / 64) * 64;
  h.resize(total - base - 1, ' ');
  h += '\n';
  SCWC_CHECK(h.size() <= 65535, "npy: header too long for v1.0");

  std::vector<std::uint8_t> out;
  out.reserve(base + h.size() + payload.size());
  const char magic[6] = {'\x93', 'N', 'U', 'M', 'P', 'Y'};
  out.insert(out.end(), magic, magic + 6);
  out.push_back(1);  // major
  out.push_back(0);  // minor
  put_u16(out, static_cast<std::uint16_t>(h.size()));
  out.insert(out.end(), h.begin(), h.end());
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

std::vector<std::uint8_t> npy_from_doubles(
    std::span<const double> values, const std::vector<std::size_t>& shape) {
  std::size_t count = 1;
  for (const std::size_t s : shape) count *= s;
  SCWC_REQUIRE(count == values.size(), "npy: shape does not match data size");
  std::vector<std::uint8_t> payload(values.size() * 8);
  for (std::size_t i = 0; i < values.size(); ++i) {
    std::uint64_t bits;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &values[i], sizeof(bits));
    for (int b = 0; b < 8; ++b) {
      payload[i * 8 + static_cast<std::size_t>(b)] =
          static_cast<std::uint8_t>((bits >> (8 * b)) & 0xFF);
    }
  }
  return npy_encode("<f8", shape, payload);
}

std::vector<std::uint8_t> npy_from_labels(std::span<const int> labels) {
  std::vector<std::uint8_t> payload;
  payload.reserve(labels.size() * 8);
  for (const int label : labels) {
    put_u64(payload, static_cast<std::uint64_t>(
                         static_cast<std::int64_t>(label)));
  }
  return npy_encode("<i8", {labels.size()}, payload);
}

std::vector<std::uint8_t> npy_from_strings(
    const std::vector<std::string>& values) {
  constexpr std::size_t kWidth = 32;
  std::vector<std::uint8_t> payload;
  payload.reserve(values.size() * kWidth * 4);
  for (const auto& s : values) {
    for (std::size_t i = 0; i < kWidth; ++i) {
      // ASCII → UTF-32LE code units; zero-padded beyond the string.
      const std::uint32_t cp =
          i < s.size() ? static_cast<std::uint8_t>(s[i]) : 0u;
      put_u32(payload, cp);
    }
  }
  return npy_encode("<U32", {values.size()}, payload);
}

void write_zip(std::ostream& os, const std::vector<ZipEntry>& entries) {
  struct Record {
    std::uint32_t crc;
    std::uint32_t size;
    std::uint32_t offset;
  };
  std::vector<Record> records;
  records.reserve(entries.size());
  std::uint32_t offset = 0;

  const auto emit = [&os, &offset](const std::vector<std::uint8_t>& bytes) {
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    offset += static_cast<std::uint32_t>(bytes.size());
  };

  // Local file headers + data.
  for (const auto& entry : entries) {
    SCWC_REQUIRE(entry.bytes.size() < 0xFFFFFFFFull,
                 "zip: member too large for zip32");
    Record rec;
    rec.offset = offset;
    rec.crc = crc32(entry.bytes);
    rec.size = static_cast<std::uint32_t>(entry.bytes.size());
    records.push_back(rec);

    std::vector<std::uint8_t> header;
    put_u32(header, 0x04034b50);                     // local header signature
    put_u16(header, 20);                             // version needed
    put_u16(header, 0);                              // flags
    put_u16(header, 0);                              // method: stored
    put_u16(header, 0);                              // mod time
    put_u16(header, 0x21);                           // mod date (1980-01-01)
    put_u32(header, rec.crc);
    put_u32(header, rec.size);                       // compressed size
    put_u32(header, rec.size);                       // uncompressed size
    put_u16(header, static_cast<std::uint16_t>(entry.name.size()));
    put_u16(header, 0);                              // extra length
    header.insert(header.end(), entry.name.begin(), entry.name.end());
    emit(header);
    emit(entry.bytes);
  }

  // Central directory.
  const std::uint32_t central_start = offset;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& entry = entries[i];
    const Record& rec = records[i];
    std::vector<std::uint8_t> header;
    put_u32(header, 0x02014b50);  // central directory signature
    put_u16(header, 20);          // version made by
    put_u16(header, 20);          // version needed
    put_u16(header, 0);           // flags
    put_u16(header, 0);           // method
    put_u16(header, 0);           // mod time
    put_u16(header, 0x21);        // mod date
    put_u32(header, rec.crc);
    put_u32(header, rec.size);
    put_u32(header, rec.size);
    put_u16(header, static_cast<std::uint16_t>(entry.name.size()));
    put_u16(header, 0);           // extra
    put_u16(header, 0);           // comment
    put_u16(header, 0);           // disk number
    put_u16(header, 0);           // internal attrs
    put_u32(header, 0);           // external attrs
    put_u32(header, rec.offset);
    header.insert(header.end(), entry.name.begin(), entry.name.end());
    emit(header);
  }
  const std::uint32_t central_size = offset - central_start;

  // End of central directory.
  std::vector<std::uint8_t> eocd;
  put_u32(eocd, 0x06054b50);
  put_u16(eocd, 0);  // disk
  put_u16(eocd, 0);  // central directory disk
  put_u16(eocd, static_cast<std::uint16_t>(entries.size()));
  put_u16(eocd, static_cast<std::uint16_t>(entries.size()));
  put_u32(eocd, central_size);
  put_u32(eocd, central_start);
  put_u16(eocd, 0);  // comment length
  emit(eocd);
  SCWC_REQUIRE(os.good(), "zip: write failed");
}

void save_npz(const ChallengeDataset& dataset,
              const std::filesystem::path& path) {
  const obs::TraceSpan span("npz.write");
  dataset.validate();
  std::vector<ZipEntry> entries;
  entries.push_back(
      {"X_train.npy",
       npy_from_doubles(dataset.x_train.raw(),
                        {dataset.x_train.trials(), dataset.x_train.steps(),
                         dataset.x_train.sensors()})});
  entries.push_back({"y_train.npy", npy_from_labels(dataset.y_train)});
  entries.push_back(
      {"model_train.npy", npy_from_strings(dataset.model_train)});
  entries.push_back(
      {"X_test.npy",
       npy_from_doubles(dataset.x_test.raw(),
                        {dataset.x_test.trials(), dataset.x_test.steps(),
                         dataset.x_test.sensors()})});
  entries.push_back({"y_test.npy", npy_from_labels(dataset.y_test)});
  entries.push_back({"model_test.npy", npy_from_strings(dataset.model_test)});

  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SCWC_REQUIRE(os.is_open(), "cannot open " + path.string() + " for writing");
  write_zip(os, entries);
  std::uint64_t payload = 0;
  for (const ZipEntry& e : entries) payload += e.bytes.size();
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("scwc_data_npz_writes_total").inc();
  reg.counter("scwc_data_npz_bytes_written_total").inc(payload);
}

}  // namespace scwc::data
