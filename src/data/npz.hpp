// Numpy .npz export — the paper's release format.
//
// "Each dataset is saved in the Numpy npz format and contains following
//  the files: X_train, y_train, model_train, X_test, y_test, model_test."
//
// This module writes byte-exact NPY v1.0 members inside an uncompressed
// ("stored") ZIP container so a standard `numpy.load` reads the result with
// no extra dependencies on our side:
//   X_*      float64, shape (trials, samples, sensors)
//   y_*      int64,   shape (trials,)
//   model_*  unicode '<U32', shape (trials,)
#pragma once

#include <cstdint>
#include <filesystem>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "data/challenge_dataset.hpp"

namespace scwc::data {

/// CRC-32 (IEEE 802.3, as required by the ZIP format) of a byte buffer.
/// `seed` allows incremental computation: pass the previous result.
std::uint32_t crc32(std::span<const std::uint8_t> bytes,
                    std::uint32_t seed = 0);

/// Serialises one array into NPY v1.0 bytes.
/// `descr` is the numpy dtype string (e.g. "<f8", "<i8", "<U32") and
/// `shape` the dimensions; `payload` must already be in the dtype's wire
/// format (little-endian).
std::vector<std::uint8_t> npy_encode(const std::string& descr,
                                     const std::vector<std::size_t>& shape,
                                     std::span<const std::uint8_t> payload);

/// Encodes a double array as "<f8" NPY bytes.
std::vector<std::uint8_t> npy_from_doubles(
    std::span<const double> values, const std::vector<std::size_t>& shape);

/// Encodes int labels as "<i8" NPY bytes.
std::vector<std::uint8_t> npy_from_labels(std::span<const int> labels);

/// Encodes strings as fixed-width "<U32" NPY bytes (UTF-32LE, truncating
/// anything longer than 32 code points — class names are far shorter).
std::vector<std::uint8_t> npy_from_strings(
    const std::vector<std::string>& values);

/// One member of a ZIP archive.
struct ZipEntry {
  std::string name;                 ///< e.g. "X_train.npy"
  std::vector<std::uint8_t> bytes;  ///< raw member contents
};

/// Writes an uncompressed ZIP archive (method 0 "stored") to a stream.
void write_zip(std::ostream& os, const std::vector<ZipEntry>& entries);

/// Writes `dataset` to `path` as the six-member npz the challenge releases.
void save_npz(const ChallengeDataset& dataset,
              const std::filesystem::path& path);

}  // namespace scwc::data
