#include "data/serialize.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <limits>
#include <istream>
#include <ostream>
#include <string>

#include <chrono>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "telemetry/architectures.hpp"

namespace scwc::data {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'W', 'C', 'B', '0', '0', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  // Explicit little-endian byte order for portability.
  for (int i = 0; i < 8; ++i) {
    const char byte = static_cast<char>((v >> (8 * i)) & 0xFF);
    os.put(byte);
  }
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

void write_doubles(std::ostream& os, std::span<const double> v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

/// Counting reader: every failure names the field being read and the byte
/// offset where the stream ended or the value turned implausible, so a
/// corrupted/truncated .scb is diagnosable instead of a crash or a silent
/// misread.
class ScbReader {
 public:
  explicit ScbReader(std::istream& is) : is_(is) {}

  [[nodiscard]] std::uint64_t offset() const noexcept { return offset_; }

  [[noreturn]] void fail(const std::string& what) const {
    SCWC_FAIL("scb: " + what + " at byte offset " + std::to_string(offset_));
  }

  void read_bytes(char* dst, std::size_t n, const char* what) {
    is_.read(dst, static_cast<std::streamsize>(n));
    if (static_cast<std::size_t>(is_.gcount()) != n) {
      offset_ += static_cast<std::uint64_t>(std::max<std::streamsize>(
          0, is_.gcount()));
      fail(std::string("truncated ") + what);
    }
    offset_ += n;
  }

  std::uint64_t read_u64(const char* what) {
    char bytes[8];
    read_bytes(bytes, sizeof(bytes), what);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<unsigned char>(bytes[i]))
           << (8 * i);
    }
    return v;
  }

  std::string read_string(const char* what) {
    const std::uint64_t n = read_u64(what);
    if (n >= (1ULL << 24)) {
      fail(std::string("unreasonable ") + what + " length " +
           std::to_string(n));
    }
    std::string s(static_cast<std::size_t>(n), '\0');
    read_bytes(s.data(), s.size(), what);
    return s;
  }

  std::vector<double> read_doubles(const char* what) {
    const std::uint64_t n = read_u64(what);
    if (n >= (1ULL << 32)) {
      fail(std::string("unreasonable ") + what + " length " +
           std::to_string(n));
    }
    // Read in bounded chunks: a corrupted length field over a truncated
    // stream then fails at the real end of data instead of attempting one
    // gigantic allocation up front.
    std::vector<double> v;
    v.reserve(std::min<std::size_t>(static_cast<std::size_t>(n), 1u << 16));
    std::size_t remaining = static_cast<std::size_t>(n);
    while (remaining > 0) {
      const std::size_t chunk = std::min<std::size_t>(remaining, 1u << 16);
      const std::size_t old_size = v.size();
      v.resize(old_size + chunk);
      read_bytes(reinterpret_cast<char*>(v.data() + old_size),
                 chunk * sizeof(double), what);
      remaining -= chunk;
    }
    return v;
  }

 private:
  std::istream& is_;
  std::uint64_t offset_ = 0;
};

void write_split(std::ostream& os, const Tensor3& x,
                 const std::vector<int>& y,
                 const std::vector<std::string>& names,
                 const std::vector<std::int64_t>& jobs) {
  write_u64(os, x.trials());
  write_u64(os, x.steps());
  write_u64(os, x.sensors());
  write_doubles(os, x.raw());
  write_u64(os, y.size());
  for (const int label : y) write_u64(os, static_cast<std::uint64_t>(label));
  write_u64(os, names.size());
  for (const auto& n : names) write_string(os, n);
  write_u64(os, jobs.size());
  for (const auto j : jobs) write_u64(os, static_cast<std::uint64_t>(j));
}

void read_split(ScbReader& reader, Tensor3& x, std::vector<int>& y,
                std::vector<std::string>& names,
                std::vector<std::int64_t>& jobs) {
  const std::uint64_t trials = reader.read_u64("trial count");
  const std::uint64_t steps = reader.read_u64("step count");
  const std::uint64_t sensors = reader.read_u64("sensor count");
  // Dimension sanity *before* multiplying, so a corrupted header cannot
  // overflow std::size_t and silently alias a smaller tensor.
  constexpr std::uint64_t kDimCap = 1ULL << 26;
  if (trials >= kDimCap || steps >= kDimCap || sensors >= kDimCap) {
    reader.fail("implausible tensor dimensions " + std::to_string(trials) +
                "×" + std::to_string(steps) + "×" + std::to_string(sensors));
  }
  const std::vector<double> raw = reader.read_doubles("tensor data");
  // Overflow-safe product: capped dimensions still multiply past 64 bits,
  // and an overflowed product could alias raw.size().
  const std::uint64_t ts = trials * steps;  // < 2^52, cannot overflow
  if (sensors != 0 &&
      ts > std::numeric_limits<std::uint64_t>::max() / sensors) {
    reader.fail("tensor dimensions overflow");
  }
  const std::uint64_t expected = ts * sensors;
  if (expected != raw.size()) {
    reader.fail("tensor size mismatch (header implies " +
                std::to_string(trials) + "×" + std::to_string(steps) + "×" +
                std::to_string(sensors) + " values, got " +
                std::to_string(raw.size()) + ")");
  }
  x = Tensor3(trials, steps, sensors);
  std::memcpy(x.raw().data(), raw.data(), raw.size() * sizeof(double));

  const std::uint64_t ny = reader.read_u64("label count");
  if (ny != trials) reader.fail("label count mismatch");
  y.resize(ny);
  for (auto& label : y) label = static_cast<int>(reader.read_u64("label"));

  const std::uint64_t nn = reader.read_u64("model-name count");
  if (nn != trials) reader.fail("model-name count mismatch");
  names.resize(nn);
  for (auto& n : names) n = reader.read_string("model name");

  const std::uint64_t nj = reader.read_u64("job-id count");
  if (nj != trials) reader.fail("job-id count mismatch");
  jobs.resize(nj);
  for (auto& j : jobs) {
    j = static_cast<std::int64_t>(reader.read_u64("job id"));
  }
}

}  // namespace

void write_scb(const ChallengeDataset& dataset, std::ostream& os) {
  const obs::TraceSpan span("scb.write");
  const auto start_pos = os.tellp();
  os.write(kMagic, sizeof(kMagic));
  write_string(os, dataset.name);
  write_u64(os, static_cast<std::uint64_t>(dataset.policy));
  write_split(os, dataset.x_train, dataset.y_train, dataset.model_train,
              dataset.job_train);
  write_split(os, dataset.x_test, dataset.y_test, dataset.model_test,
              dataset.job_test);
  SCWC_REQUIRE(os.good(), "scb: write failed");
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("scwc_data_scb_writes_total").inc();
  const auto end_pos = os.tellp();
  if (start_pos >= 0 && end_pos >= start_pos) {
    reg.counter("scwc_data_scb_bytes_written_total")
        .inc(static_cast<std::uint64_t>(end_pos - start_pos));
  }
}

ChallengeDataset read_scb(std::istream& is) {
  const obs::TraceSpan span("scb.read");
  const auto t0 = std::chrono::steady_clock::now();
  ScbReader reader(is);
  char magic[8];
  reader.read_bytes(magic, sizeof(magic), "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    reader.fail("bad magic (not an .scb file)");
  }
  ChallengeDataset d;
  d.name = reader.read_string("dataset name");
  const std::uint64_t policy = reader.read_u64("window policy");
  if (policy > 2) reader.fail("bad window policy " + std::to_string(policy));
  d.policy = static_cast<WindowPolicy>(policy);
  read_split(reader, d.x_train, d.y_train, d.model_train, d.job_train);
  read_split(reader, d.x_test, d.y_test, d.model_test, d.job_test);
  d.validate();
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("scwc_data_scb_reads_total").inc();
  reg.counter("scwc_data_scb_bytes_read_total").inc(reader.offset());
  reg.histogram("scwc_data_scb_read_seconds")
      .observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count());
  return d;
}

void save_scb(const ChallengeDataset& dataset,
              const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SCWC_REQUIRE(os.is_open(), "cannot open " + path.string() + " for writing");
  write_scb(dataset, os);
}

ChallengeDataset load_scb(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  SCWC_REQUIRE(is.is_open(), "cannot open " + path.string() + " for reading");
  return read_scb(is);
}

void export_trial_csv(const Tensor3& x, std::size_t trial,
                      const std::filesystem::path& path) {
  SCWC_REQUIRE(trial < x.trials(), "trial index out of range");
  std::ofstream os(path, std::ios::trunc);
  SCWC_REQUIRE(os.is_open(), "cannot open " + path.string() + " for writing");
  for (std::size_t s = 0; s < x.sensors(); ++s) {
    if (s > 0) os << ',';
    os << telemetry::gpu_sensor_name(s);
  }
  os << '\n';
  for (std::size_t t = 0; t < x.steps(); ++t) {
    for (std::size_t s = 0; s < x.sensors(); ++s) {
      if (s > 0) os << ',';
      os << x(trial, t, s);
    }
    os << '\n';
  }
}

}  // namespace scwc::data
