#include "data/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/error.hpp"
#include "telemetry/architectures.hpp"

namespace scwc::data {

namespace {

constexpr char kMagic[8] = {'S', 'C', 'W', 'C', 'B', '0', '0', '1'};

void write_u64(std::ostream& os, std::uint64_t v) {
  // Explicit little-endian byte order for portability.
  for (int i = 0; i < 8; ++i) {
    const char byte = static_cast<char>((v >> (8 * i)) & 0xFF);
    os.put(byte);
  }
}

std::uint64_t read_u64(std::istream& is) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    const int byte = is.get();
    SCWC_REQUIRE(byte != EOF, "scb: truncated integer");
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(byte))
         << (8 * i);
  }
  return v;
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  SCWC_REQUIRE(n < (1ULL << 24), "scb: unreasonable string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  SCWC_REQUIRE(is.good(), "scb: truncated string");
  return s;
}

void write_doubles(std::ostream& os, std::span<const double> v) {
  write_u64(os, v.size());
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(double)));
}

std::vector<double> read_doubles(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  SCWC_REQUIRE(n < (1ULL << 32), "scb: unreasonable array length");
  std::vector<double> v(n);
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  SCWC_REQUIRE(is.good(), "scb: truncated double array");
  return v;
}

void write_split(std::ostream& os, const Tensor3& x,
                 const std::vector<int>& y,
                 const std::vector<std::string>& names,
                 const std::vector<std::int64_t>& jobs) {
  write_u64(os, x.trials());
  write_u64(os, x.steps());
  write_u64(os, x.sensors());
  write_doubles(os, x.raw());
  write_u64(os, y.size());
  for (const int label : y) write_u64(os, static_cast<std::uint64_t>(label));
  write_u64(os, names.size());
  for (const auto& n : names) write_string(os, n);
  write_u64(os, jobs.size());
  for (const auto j : jobs) write_u64(os, static_cast<std::uint64_t>(j));
}

void read_split(std::istream& is, Tensor3& x, std::vector<int>& y,
                std::vector<std::string>& names,
                std::vector<std::int64_t>& jobs) {
  const std::uint64_t trials = read_u64(is);
  const std::uint64_t steps = read_u64(is);
  const std::uint64_t sensors = read_u64(is);
  const std::vector<double> raw = read_doubles(is);
  SCWC_REQUIRE(raw.size() == trials * steps * sensors,
               "scb: tensor size mismatch");
  x = Tensor3(trials, steps, sensors);
  std::memcpy(x.raw().data(), raw.data(), raw.size() * sizeof(double));

  const std::uint64_t ny = read_u64(is);
  SCWC_REQUIRE(ny == trials, "scb: label count mismatch");
  y.resize(ny);
  for (auto& label : y) label = static_cast<int>(read_u64(is));

  const std::uint64_t nn = read_u64(is);
  SCWC_REQUIRE(nn == trials, "scb: model-name count mismatch");
  names.resize(nn);
  for (auto& n : names) n = read_string(is);

  const std::uint64_t nj = read_u64(is);
  SCWC_REQUIRE(nj == trials, "scb: job-id count mismatch");
  jobs.resize(nj);
  for (auto& j : jobs) j = static_cast<std::int64_t>(read_u64(is));
}

}  // namespace

void write_scb(const ChallengeDataset& dataset, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  write_string(os, dataset.name);
  write_u64(os, static_cast<std::uint64_t>(dataset.policy));
  write_split(os, dataset.x_train, dataset.y_train, dataset.model_train,
              dataset.job_train);
  write_split(os, dataset.x_test, dataset.y_test, dataset.model_test,
              dataset.job_test);
  SCWC_REQUIRE(os.good(), "scb: write failed");
}

ChallengeDataset read_scb(std::istream& is) {
  char magic[8];
  is.read(magic, sizeof(magic));
  SCWC_REQUIRE(is.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
               "scb: bad magic");
  ChallengeDataset d;
  d.name = read_string(is);
  const std::uint64_t policy = read_u64(is);
  SCWC_REQUIRE(policy <= 2, "scb: bad window policy");
  d.policy = static_cast<WindowPolicy>(policy);
  read_split(is, d.x_train, d.y_train, d.model_train, d.job_train);
  read_split(is, d.x_test, d.y_test, d.model_test, d.job_test);
  d.validate();
  return d;
}

void save_scb(const ChallengeDataset& dataset,
              const std::filesystem::path& path) {
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  SCWC_REQUIRE(os.is_open(), "cannot open " + path.string() + " for writing");
  write_scb(dataset, os);
}

ChallengeDataset load_scb(const std::filesystem::path& path) {
  std::ifstream is(path, std::ios::binary);
  SCWC_REQUIRE(is.is_open(), "cannot open " + path.string() + " for reading");
  return read_scb(is);
}

void export_trial_csv(const Tensor3& x, std::size_t trial,
                      const std::filesystem::path& path) {
  SCWC_REQUIRE(trial < x.trials(), "trial index out of range");
  std::ofstream os(path, std::ios::trunc);
  SCWC_REQUIRE(os.is_open(), "cannot open " + path.string() + " for writing");
  for (std::size_t s = 0; s < x.sensors(); ++s) {
    if (s > 0) os << ',';
    os << telemetry::gpu_sensor_name(s);
  }
  os << '\n';
  for (std::size_t t = 0; t < x.steps(); ++t) {
    for (std::size_t s = 0; s < x.sensors(); ++s) {
      if (s > 0) os << ',';
      os << x(trial, t, s);
    }
    os << '\n';
  }
}

}  // namespace scwc::data
