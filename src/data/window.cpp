#include "data/window.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace scwc::data {

std::string window_policy_name(WindowPolicy policy) {
  switch (policy) {
    case WindowPolicy::kStart:
      return "start";
    case WindowPolicy::kMiddle:
      return "middle";
    case WindowPolicy::kRandom:
      return "random";
  }
  return "?";
}

std::optional<std::size_t> choose_window_offset(std::size_t series_steps,
                                                std::size_t window_steps,
                                                WindowPolicy policy,
                                                Rng& rng) {
  if (series_steps < window_steps || window_steps == 0) return std::nullopt;
  const std::size_t slack = series_steps - window_steps;
  switch (policy) {
    case WindowPolicy::kStart:
      return 0;
    case WindowPolicy::kMiddle:
      return slack / 2;
    case WindowPolicy::kRandom:
      return static_cast<std::size_t>(rng.uniform_index(slack + 1));
  }
  return std::nullopt;
}

void extract_window(const telemetry::TimeSeries& series, std::size_t offset,
                    std::size_t window_steps, std::span<double> dest) {
  const std::size_t sensors = series.sensors();
  SCWC_REQUIRE(offset + window_steps <= series.steps(),
               "window exceeds series length");
  SCWC_REQUIRE(dest.size() == window_steps * sensors,
               "destination span has the wrong size");
  const double* src = series.values.data() + offset * sensors;
  std::copy(src, src + window_steps * sensors, dest.begin());
}

}  // namespace scwc::data
