// Train/test splitting.
//
// The paper splits each challenge dataset 80/20 at the *trial* (GPU-series)
// level. Because a multi-GPU job contributes several near-identical trials,
// a trial-level split leaks sibling series across the boundary; we
// reproduce that faithfully (kTrial) and additionally offer a job-level
// split (kJob) so the leakage effect can be quantified — see
// bench/ablation_split.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace scwc::data {

/// What unit the 80/20 boundary respects.
enum class SplitUnit { kTrial, kJob };

/// Outcome of a split: indices into the original trial array.
struct SplitIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Stratified 80/20 split.
///
/// `labels[i]` is the class of trial i and `job_ids[i]` its source job.
/// Stratification is per class so every class appears in both sides
/// (each class is guaranteed ≥1 test and ≥1 train trial when it has ≥2
/// trials/jobs). With kJob, all trials of one job land on the same side.
SplitIndices stratified_split(std::span<const int> labels,
                              std::span<const std::int64_t> job_ids,
                              double test_fraction, SplitUnit unit, Rng& rng);

}  // namespace scwc::data
