#include "data/split.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/error.hpp"

namespace scwc::data {

namespace {

// Splits the per-class unit list (trials or jobs) into test/train with at
// least one unit on each side when possible.
void split_units(std::vector<std::size_t>& units, double test_fraction,
                 Rng& rng, std::vector<std::size_t>& test_units,
                 std::vector<std::size_t>& train_units) {
  rng.shuffle(units);
  std::size_t n_test = static_cast<std::size_t>(
      std::lround(test_fraction * static_cast<double>(units.size())));
  if (units.size() >= 2) {
    n_test = std::clamp<std::size_t>(n_test, 1, units.size() - 1);
  }
  test_units.assign(units.begin(),
                    units.begin() + static_cast<std::ptrdiff_t>(n_test));
  train_units.assign(units.begin() + static_cast<std::ptrdiff_t>(n_test),
                     units.end());
}

}  // namespace

SplitIndices stratified_split(std::span<const int> labels,
                              std::span<const std::int64_t> job_ids,
                              double test_fraction, SplitUnit unit, Rng& rng) {
  SCWC_REQUIRE(labels.size() == job_ids.size(),
               "labels and job_ids must be aligned");
  SCWC_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
               "test_fraction must be in (0, 1)");

  SplitIndices out;
  if (unit == SplitUnit::kTrial) {
    // Per class, shuffle trial indices and take the tail as test.
    std::map<int, std::vector<std::size_t>> by_class;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      by_class[labels[i]].push_back(i);
    }
    for (auto& [cls, indices] : by_class) {
      std::vector<std::size_t> test_units;
      std::vector<std::size_t> train_units;
      split_units(indices, test_fraction, rng, test_units, train_units);
      out.test.insert(out.test.end(), test_units.begin(), test_units.end());
      out.train.insert(out.train.end(), train_units.begin(),
                       train_units.end());
    }
  } else {
    // Per class, shuffle *jobs*; a job carries all of its trials.
    std::map<int, std::vector<std::int64_t>> jobs_by_class;
    std::map<std::int64_t, std::vector<std::size_t>> trials_by_job;
    for (std::size_t i = 0; i < labels.size(); ++i) {
      auto& class_jobs = jobs_by_class[labels[i]];
      if (trials_by_job.find(job_ids[i]) == trials_by_job.end()) {
        class_jobs.push_back(job_ids[i]);
      }
      trials_by_job[job_ids[i]].push_back(i);
    }
    for (auto& [cls, jobs] : jobs_by_class) {
      std::vector<std::size_t> job_positions(jobs.size());
      for (std::size_t k = 0; k < jobs.size(); ++k) job_positions[k] = k;
      std::vector<std::size_t> test_units;
      std::vector<std::size_t> train_units;
      split_units(job_positions, test_fraction, rng, test_units, train_units);
      for (const std::size_t k : test_units) {
        const auto& trials = trials_by_job[jobs[k]];
        out.test.insert(out.test.end(), trials.begin(), trials.end());
      }
      for (const std::size_t k : train_units) {
        const auto& trials = trials_by_job[jobs[k]];
        out.train.insert(out.train.end(), trials.begin(), trials.end());
      }
    }
  }
  std::sort(out.train.begin(), out.train.end());
  std::sort(out.test.begin(), out.test.end());
  return out;
}

}  // namespace scwc::data
