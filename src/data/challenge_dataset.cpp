#include "data/challenge_dataset.hpp"

#include "common/error.hpp"
#include "telemetry/architectures.hpp"

namespace scwc::data {

void ChallengeDataset::validate() const {
  SCWC_REQUIRE(x_train.trials() == y_train.size(),
               "y_train length must match X_train trials");
  SCWC_REQUIRE(x_train.trials() == model_train.size(),
               "model_train length must match X_train trials");
  SCWC_REQUIRE(x_train.trials() == job_train.size(),
               "job_train length must match X_train trials");
  SCWC_REQUIRE(x_test.trials() == y_test.size(),
               "y_test length must match X_test trials");
  SCWC_REQUIRE(x_test.trials() == model_test.size(),
               "model_test length must match X_test trials");
  SCWC_REQUIRE(x_test.trials() == job_test.size(),
               "job_test length must match X_test trials");
  SCWC_REQUIRE(x_train.trials() > 0 && x_test.trials() > 0,
               "both splits must be non-empty");
  SCWC_REQUIRE(x_train.steps() == x_test.steps() &&
                   x_train.sensors() == x_test.sensors(),
               "train/test tensors must agree on steps and sensors");
  const auto check_labels = [](const std::vector<int>& y,
                               const std::vector<std::string>& names) {
    for (std::size_t i = 0; i < y.size(); ++i) {
      SCWC_REQUIRE(y[i] >= 0 && static_cast<std::size_t>(y[i]) <
                                     telemetry::kNumClasses,
                   "label out of range");
      SCWC_REQUIRE(telemetry::architecture(y[i]).name == names[i],
                   "model name does not match label");
    }
  };
  check_labels(y_train, model_train);
  check_labels(y_test, model_test);
}

}  // namespace scwc::data
