// The challenge dataset container (one row of Table IV).
//
// Mirrors the released npz layout: X_train/y_train/model_train and
// X_test/y_test/model_test, where X is (trials, samples, sensors), y holds
// integer class labels 0..25 and model_* the corresponding class names.
#pragma once

#include <string>
#include <vector>

#include "data/tensor3.hpp"
#include "data/window.hpp"

namespace scwc::data {

/// Train/test bundle for one sampling policy (e.g. "60-random-1").
struct ChallengeDataset {
  std::string name;                     ///< "60-start-1", "60-middle-1", "60-random-3", …
  WindowPolicy policy = WindowPolicy::kStart;

  Tensor3 x_train;
  std::vector<int> y_train;             ///< class ids, one per training trial
  std::vector<std::string> model_train; ///< class names aligned with y_train
  std::vector<std::int64_t> job_train;  ///< source job id per trial (extra
                                        ///  provenance; enables job-level
                                        ///  leakage analysis)

  Tensor3 x_test;
  std::vector<int> y_test;
  std::vector<std::string> model_test;
  std::vector<std::int64_t> job_test;

  [[nodiscard]] std::size_t train_trials() const noexcept {
    return x_train.trials();
  }
  [[nodiscard]] std::size_t test_trials() const noexcept {
    return x_test.trials();
  }
  [[nodiscard]] std::size_t steps() const noexcept { return x_train.steps(); }
  [[nodiscard]] std::size_t sensors() const noexcept {
    return x_train.sensors();
  }

  /// Throws unless the invariants hold (aligned lengths, label range, both
  /// splits non-empty and shape-consistent).
  void validate() const;
};

}  // namespace scwc::data
