#include "data/tensor3.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace scwc::data {

linalg::Matrix Tensor3::trial_matrix(std::size_t i) const {
  SCWC_REQUIRE(i < trials_, "trial index out of range");
  linalg::Matrix m(steps_, sensors_);
  const auto src = trial(i);
  std::copy(src.begin(), src.end(), m.flat().begin());
  return m;
}

linalg::Matrix Tensor3::flatten() const {
  linalg::Matrix m(trials_, steps_ * sensors_);
  std::copy(data_.begin(), data_.end(), m.flat().begin());
  return m;
}

Tensor3 Tensor3::from_flat(const linalg::Matrix& flat, std::size_t steps,
                           std::size_t sensors) {
  SCWC_REQUIRE(flat.cols() == steps * sensors,
               "from_flat: column count must equal steps*sensors");
  Tensor3 t(flat.rows(), steps, sensors);
  std::copy(flat.flat().begin(), flat.flat().end(), t.data_.begin());
  return t;
}

Tensor3 Tensor3::gather(std::span<const std::size_t> indices) const {
  Tensor3 out(indices.size(), steps_, sensors_);
  for (std::size_t k = 0; k < indices.size(); ++k) {
    SCWC_REQUIRE(indices[k] < trials_, "gather index out of range");
    const auto src = trial(indices[k]);
    std::copy(src.begin(), src.end(), out.trial(k).begin());
  }
  return out;
}

}  // namespace scwc::data
