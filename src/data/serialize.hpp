// Dataset serialisation.
//
// The released challenge data ships as Numpy .npz archives; the C++
// counterpart here is a little-endian binary container (.scb) holding the
// same six arrays plus provenance, and a CSV exporter for interoperability
// with the original Python baselines.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "data/challenge_dataset.hpp"

namespace scwc::data {

/// Writes `dataset` to `path` in SCB v1 format. Overwrites existing files.
void save_scb(const ChallengeDataset& dataset, const std::filesystem::path& path);

/// Reads an SCB v1 file. Throws scwc::Error on malformed input (bad magic,
/// truncated arrays, inconsistent lengths).
ChallengeDataset load_scb(const std::filesystem::path& path);

/// Stream-level API (used by tests to round-trip through memory).
void write_scb(const ChallengeDataset& dataset, std::ostream& os);
ChallengeDataset read_scb(std::istream& is);

/// Exports one trial as CSV: header of sensor names, one row per time step.
void export_trial_csv(const Tensor3& x, std::size_t trial,
                      const std::filesystem::path& path);

}  // namespace scwc::data
