// Three-dimensional trial tensor.
//
// The challenge datasets are tensors (trials, samples, sensors) — e.g.
// (14590, 540, 7) for 60-start-1. Tensor3 stores that layout contiguously
// (trial-major, then time, then sensor) which matches the Numpy npz files
// the paper releases, and offers the two views every consumer needs: a
// flattened trials×(samples·sensors) matrix for the classical ML pipeline,
// and per-trial samples×sensors matrices for covariance features and RNNs.
#pragma once

#include <cstddef>
#include <span>

#include "linalg/matrix.hpp"

namespace scwc::data {

/// Contiguous (trials × steps × sensors) tensor of doubles.
class Tensor3 {
 public:
  Tensor3() = default;
  Tensor3(std::size_t trials, std::size_t steps, std::size_t sensors)
      : trials_(trials),
        steps_(steps),
        sensors_(sensors),
        data_(trials * steps * sensors, 0.0) {}

  [[nodiscard]] std::size_t trials() const noexcept { return trials_; }
  [[nodiscard]] std::size_t steps() const noexcept { return steps_; }
  [[nodiscard]] std::size_t sensors() const noexcept { return sensors_; }
  [[nodiscard]] bool empty() const noexcept { return data_.empty(); }

  double& operator()(std::size_t trial, std::size_t t, std::size_t s) noexcept {
    return data_[(trial * steps_ + t) * sensors_ + s];
  }
  double operator()(std::size_t trial, std::size_t t,
                    std::size_t s) const noexcept {
    return data_[(trial * steps_ + t) * sensors_ + s];
  }

  /// Row-major view of one trial (steps × sensors, contiguous).
  [[nodiscard]] std::span<const double> trial(std::size_t i) const noexcept {
    return {data_.data() + i * steps_ * sensors_, steps_ * sensors_};
  }
  [[nodiscard]] std::span<double> trial(std::size_t i) noexcept {
    return {data_.data() + i * steps_ * sensors_, steps_ * sensors_};
  }

  /// Copies trial i into a steps×sensors matrix.
  [[nodiscard]] linalg::Matrix trial_matrix(std::size_t i) const;

  /// Flattens to a trials×(steps·sensors) matrix — the reshape the paper
  /// applies before StandardScaler/PCA ("each trial was reshaped to have
  /// the dimensions 3,780").
  [[nodiscard]] linalg::Matrix flatten() const;

  /// Builds a tensor from a flattened matrix (inverse of flatten()).
  static Tensor3 from_flat(const linalg::Matrix& flat, std::size_t steps,
                           std::size_t sensors);

  /// Raw storage (trial-major).
  [[nodiscard]] std::span<const double> raw() const noexcept { return {data_}; }
  [[nodiscard]] std::span<double> raw() noexcept { return {data_}; }

  /// Keeps only the trials listed in `indices` (used by train/test splits).
  [[nodiscard]] Tensor3 gather(std::span<const std::size_t> indices) const;

 private:
  std::size_t trials_ = 0;
  std::size_t steps_ = 0;
  std::size_t sensors_ = 0;
  std::vector<double> data_;
};

}  // namespace scwc::data
