// Portable wrappers over Clang's thread-safety-analysis attributes.
//
// Under clang (the `tsa` CMake preset builds with -Wthread-safety -Werror)
// these expand to the capability attributes the analysis consumes; under
// GCC and every other compiler they expand to nothing, so annotated code
// compiles identically everywhere. The macros follow the abseil naming
// scheme with an SCWC_ prefix so they cannot collide with downstream
// headers.
//
// Usage conventions in this tree:
//   - every lockable type is scwc::Mutex (common/mutex.hpp), which carries
//     SCWC_CAPABILITY("mutex");
//   - every mutable field shared across threads carries
//     SCWC_GUARDED_BY(mutex_) on its declaration;
//   - every helper that assumes the caller already holds a lock carries
//     SCWC_REQUIRES(mutex_) instead of a "caller holds mutex_" comment;
//   - SCWC_NO_THREAD_SAFETY_ANALYSIS is a last resort and must carry an
//     inline justification.
#pragma once

#if defined(__clang__)
#define SCWC_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define SCWC_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op outside clang
#endif

/// Marks a class as a lockable capability; `x` names it in diagnostics.
#define SCWC_CAPABILITY(x) SCWC_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases.
#define SCWC_SCOPED_CAPABILITY SCWC_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Field may only be read/written while holding `x`.
#define SCWC_GUARDED_BY(x) SCWC_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Pointee (not the pointer itself) is guarded by `x`.
#define SCWC_PT_GUARDED_BY(x) SCWC_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Caller must hold the listed capabilities on entry (and still on exit).
#define SCWC_REQUIRES(...) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Function acquires the listed capabilities (held on exit, not on entry).
#define SCWC_ACQUIRE(...) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Function releases the listed capabilities (held on entry, not on exit).
#define SCWC_RELEASE(...) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Function acquires the capabilities only when it returns `result`.
#define SCWC_TRY_ACQUIRE(result, ...) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(result, __VA_ARGS__))

/// Caller must NOT hold the listed capabilities (deadlock prevention).
#define SCWC_EXCLUDES(...) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (no acquire/release).
#define SCWC_ASSERT_CAPABILITY(x) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// Function returns a reference to the capability `x`.
#define SCWC_RETURN_CAPABILITY(x) \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Opts a function out of the analysis entirely. Must be justified inline.
#define SCWC_NO_THREAD_SAFETY_ANALYSIS \
  SCWC_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)
