#include "common/thread_pool.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace scwc {

namespace {
std::size_t resolve_worker_count(std::size_t threads) {
  if (threads != 0) return threads;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}
}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
    : n_workers_(resolve_worker_count(threads)),
      obs_epoch_(std::chrono::steady_clock::now()) {
  const std::size_t n = n_workers_;
  auto& reg = obs::MetricsRegistry::global();
  obs_submitted_ = reg.counter("scwc_common_pool_tasks_submitted_total");
  obs_completed_ = reg.counter("scwc_common_pool_tasks_completed_total");
  obs_queue_depth_ = reg.gauge("scwc_common_pool_queue_depth");
  obs_busy_seconds_ = reg.gauge("scwc_common_pool_busy_seconds");
  obs_utilization_ = reg.gauge("scwc_common_pool_utilization");
  obs_task_seconds_ = reg.histogram("scwc_common_pool_task_seconds");
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    const LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  // No early-out on a repeated stop(): every caller must pass through the
  // join phase so it cannot return while another thread is still joining
  // workers (the destructor relies on this — returning early would let it
  // destroy the pool under live workers). join_mutex_ serialises the
  // std::thread::join calls themselves, which are not concurrency-safe on
  // the same thread object; joinable() makes the second pass a no-op.
  const LockGuard join_lock(join_mutex_);
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

bool ThreadPool::stopped() const {
  const LockGuard lock(mutex_);
  return stop_;
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> pt(std::move(task));
  std::future<void> fut = pt.get_future();
  {
    const LockGuard lock(mutex_);
    // Rejecting here (instead of silently enqueueing) is what keeps a
    // caller from blocking forever on a future no worker will ever run.
    SCWC_REQUIRE(!stop_,
                 "ThreadPool::submit after stop() — the pool no longer "
                 "accepts tasks");
    // The unbounded contract is for bounded producers (parallel_for); a
    // queue this deep means an open-loop producer picked the wrong API.
    SCWC_CHECK(queue_.size() < kUnboundedQueueSanityLimit,
               "ThreadPool::submit queue exceeded the unbounded-growth "
               "sanity limit — open-loop producers must use try_submit");
    queue_.push_back(std::move(pt));
    obs_submitted_.inc();
    obs_queue_depth_.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return fut;
}

bool ThreadPool::try_submit(std::function<void()> task,
                            std::size_t max_queue) {
  std::packaged_task<void()> pt(std::move(task));
  {
    const LockGuard lock(mutex_);
    if (stop_ || queue_.size() >= max_queue) return false;
    queue_.push_back(std::move(pt));
    obs_submitted_.inc();
    obs_queue_depth_.set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
  return true;
}

std::size_t ThreadPool::queue_depth() const {
  const LockGuard lock(mutex_);
  return queue_.size();
}

namespace {
// True on threads owned by a ThreadPool. Nested parallel_for calls from a
// worker run serially: blocking a worker on futures served by the same
// pool would deadlock once all workers wait.
thread_local bool t_inside_pool_worker = false;
}  // namespace

void ThreadPool::worker_loop() {
  t_inside_pool_worker = true;
  const bool timed = obs::enabled();
  for (;;) {
    std::packaged_task<void()> task;
    {
      const LockGuard lock(mutex_);
      // Explicit wait loop (not the predicate overload): clang's analysis
      // does not look inside predicate lambdas, this form it checks.
      while (!stop_ && queue_.empty()) cv_.wait(mutex_);
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      obs_queue_depth_.set(static_cast<double>(queue_.size()));
    }
    if (!timed) {
      task();  // exceptions land in the packaged_task's future
      continue;
    }
    const auto t0 = std::chrono::steady_clock::now();
    task();
    const auto t1 = std::chrono::steady_clock::now();
    const double task_s = std::chrono::duration<double>(t1 - t0).count();
    obs_completed_.inc();
    obs_task_seconds_.observe(task_s);
    obs::atomic_add(busy_seconds_, task_s);
    const double busy = busy_seconds_.load(std::memory_order_relaxed);
    obs_busy_seconds_.set(busy);
    const double alive =
        std::chrono::duration<double>(t1 - obs_epoch_).count();
    if (alive > 0.0) {
      obs_utilization_.set(busy / (alive * static_cast<double>(n_workers_)));
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for_blocked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

void parallel_for_blocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_block) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  ThreadPool& pool = ThreadPool::global();
  const std::size_t workers = pool.size();
  // A stopped pool degenerates to a serial loop instead of throwing from
  // submit — parallel_for stays usable during teardown.
  if (t_inside_pool_worker || workers <= 1 || pool.stopped() ||
      n <= std::max<std::size_t>(min_block, 1)) {
    body(begin, end);
    return;
  }
  const std::size_t blocks =
      std::min(workers, (n + min_block - 1) / std::max<std::size_t>(min_block, 1));
  const std::size_t chunk = (n + blocks - 1) / blocks;

  std::vector<std::future<void>> futures;
  futures.reserve(blocks);
  for (std::size_t b = 0; b < blocks; ++b) {
    const std::size_t lo = begin + b * chunk;
    const std::size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futures.push_back(pool.submit([&body, lo, hi] { body(lo, hi); }));
  }
  std::exception_ptr first_error;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace scwc
