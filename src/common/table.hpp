// ASCII table rendering.
//
// The bench harness reproduces the paper's tables (Table I, IV, V, VI, …)
// as monospace tables on stdout; this type owns column sizing/alignment so
// every bench prints in one consistent format.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace scwc {

/// A simple column-aligned text table with a header row and optional title.
class TextTable {
 public:
  explicit TextTable(std::string title = {}) : title_(std::move(title)) {}

  /// Sets the header row; defines the column count.
  void set_header(std::vector<std::string> header);

  /// Appends a row. Rows shorter than the header are padded with "".
  /// Rows longer than the header extend the column count.
  void add_row(std::vector<std::string> row);

  /// Number of data rows.
  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  /// Renders with box-drawing separators.
  [[nodiscard]] std::string render() const;

  /// Renders straight to a stream.
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace scwc
