// Work-sharing thread pool and parallel_for.
//
// All data-parallel loops in SCWC (GEMM row blocks, random-forest trees,
// grid-search cells, simulator jobs, LSTM batches) funnel through
// scwc::parallel_for so the whole library shares one pool and one policy:
//  * tasks are chunked statically (HPC-style block decomposition),
//  * exceptions thrown by any chunk are captured and rethrown on the caller,
//  * with a single hardware thread the loop degenerates to a serial run
//    with zero scheduling overhead, keeping results deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace scwc {

/// A fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads. Reads the immutable count, not workers_
  /// (which is guarded by join_mutex_ for the join phase).
  [[nodiscard]] std::size_t size() const noexcept { return n_workers_; }

  /// Enqueues a task; the returned future rethrows any exception.
  /// Throws scwc::Error once the pool has been stopped — a submit that used
  /// to race destruction and deadlock waiting on a future no worker would
  /// ever serve.
  ///
  /// The queue is UNBOUNDED: submit never blocks and never sheds, so a
  /// producer that outruns the workers grows the queue without limit.
  /// That is the right contract for parallel_for (which submits at most
  /// one task per worker and immediately waits), and the wrong one for an
  /// open-loop request stream — servers must use try_submit, which is how
  /// the serve layer implements admission control. As a backstop against a
  /// runaway producer, submit asserts the queue stays below
  /// kUnboundedQueueSanityLimit and throws scwc::Error beyond it.
  std::future<void> submit(std::function<void()> task);

  /// Queue depth at which submit() declares the producer runaway. Far above
  /// anything parallel_for/model training can create (they submit ≤ one
  /// task per worker); hitting it means a caller needed try_submit.
  static constexpr std::size_t kUnboundedQueueSanityLimit = 1u << 20;

  /// Non-blocking bounded submit: enqueues `task` only when fewer than
  /// `max_queue` tasks are already waiting, and returns whether it was
  /// accepted. Never blocks and never throws on a stopped pool — a stopped
  /// pool simply rejects (check stopped() to distinguish "full" from
  /// "shutting down"). The task runs detached: exceptions it throws are
  /// swallowed, so callers route failures through their own channel (the
  /// serve layer fulfils a promise inside the task). This is the primitive
  /// behind AdmissionController's load shedding.
  [[nodiscard]] bool try_submit(std::function<void()> task,
                                std::size_t max_queue);

  /// Number of tasks currently waiting in the queue (excludes running
  /// tasks). Instantaneous — use for monitoring and shed decisions only.
  [[nodiscard]] std::size_t queue_depth() const;

  /// Drains queued tasks, then joins all workers. Idempotent and safe to
  /// call from several threads at once: EVERY call — including a second,
  /// concurrent one — returns only after all workers have exited. (An
  /// earlier version let a second caller return while the first was still
  /// joining, so a destructor racing another thread's stop() could free the
  /// pool under live workers.) Called by the destructor. After stop() the
  /// pool permanently rejects submissions.
  void stop();

  /// True once stop() has begun (subsequent submits will throw).
  [[nodiscard]] bool stopped() const;

  /// Process-wide default pool (lazily constructed, sized to hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  mutable Mutex mutex_{"pool.queue"};
  // Serialises the join phase of stop(). Distinct from mutex_: workers take
  // mutex_ while draining, so joining under it would deadlock.
  Mutex join_mutex_{"pool.join"};
  std::vector<std::thread> workers_ SCWC_GUARDED_BY(join_mutex_);
  std::deque<std::packaged_task<void()>> queue_ SCWC_GUARDED_BY(mutex_);
  CondVar cv_;
  bool stop_ SCWC_GUARDED_BY(mutex_) = false;

  // Observability (scwc_common_pool_*). Handles are acquired per pool at
  // construction so a pool created after obs::set_enabled(true) reports;
  // all pools share the global registry's series. Inert under SCWC_OBS=off.
  const std::size_t n_workers_;
  const std::chrono::steady_clock::time_point obs_epoch_;
  std::atomic<double> busy_seconds_{0.0};
  obs::CounterHandle obs_submitted_;
  obs::CounterHandle obs_completed_;
  obs::GaugeHandle obs_queue_depth_;
  obs::GaugeHandle obs_busy_seconds_;
  obs::GaugeHandle obs_utilization_;
  obs::HistogramHandle obs_task_seconds_;
};

/// Blocked parallel loop over [begin, end).
///
/// `body(i)` is invoked exactly once for every index; chunking is static so
/// that a fixed thread count yields a fixed work decomposition. Runs
/// serially when the range is small or the pool has one thread.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Blocked variant exposing the chunk range — preferred when the body can
/// amortise per-chunk setup (e.g. a per-chunk RNG or accumulator).
void parallel_for_blocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_block = 1);

}  // namespace scwc
