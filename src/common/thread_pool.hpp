// Work-sharing thread pool and parallel_for.
//
// All data-parallel loops in SCWC (GEMM row blocks, random-forest trees,
// grid-search cells, simulator jobs, LSTM batches) funnel through
// scwc::parallel_for so the whole library shares one pool and one policy:
//  * tasks are chunked statically (HPC-style block decomposition),
//  * exceptions thrown by any chunk are captured and rethrown on the caller,
//  * with a single hardware thread the loop degenerates to a serial run
//    with zero scheduling overhead, keeping results deterministic.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace scwc {

/// A fixed-size pool of worker threads executing queued tasks FIFO.
class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the returned future rethrows any exception.
  /// Throws scwc::Error once the pool has been stopped — a submit that used
  /// to race destruction and deadlock waiting on a future no worker would
  /// ever serve.
  std::future<void> submit(std::function<void()> task);

  /// Drains queued tasks, then joins all workers. Idempotent and safe to
  /// call from several threads at once: EVERY call — including a second,
  /// concurrent one — returns only after all workers have exited. (An
  /// earlier version let a second caller return while the first was still
  /// joining, so a destructor racing another thread's stop() could free the
  /// pool under live workers.) Called by the destructor. After stop() the
  /// pool permanently rejects submissions.
  void stop();

  /// True once stop() has begun (subsequent submits will throw).
  [[nodiscard]] bool stopped() const;

  /// Process-wide default pool (lazily constructed, sized to hardware).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Serialises the join phase of stop(). Distinct from mutex_: workers take
  // mutex_ while draining, so joining under it would deadlock.
  std::mutex join_mutex_;

  // Observability (scwc_common_pool_*). Handles are acquired per pool at
  // construction so a pool created after obs::set_enabled(true) reports;
  // all pools share the global registry's series. Inert under SCWC_OBS=off.
  std::size_t n_workers_ = 0;
  std::chrono::steady_clock::time_point obs_epoch_;
  std::atomic<double> busy_seconds_{0.0};
  obs::CounterHandle obs_submitted_;
  obs::CounterHandle obs_completed_;
  obs::GaugeHandle obs_queue_depth_;
  obs::GaugeHandle obs_busy_seconds_;
  obs::GaugeHandle obs_utilization_;
  obs::HistogramHandle obs_task_seconds_;
};

/// Blocked parallel loop over [begin, end).
///
/// `body(i)` is invoked exactly once for every index; chunking is static so
/// that a fixed thread count yields a fixed work decomposition. Runs
/// serially when the range is small or the pool has one thread.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// Blocked variant exposing the chunk range — preferred when the body can
/// amortise per-chunk setup (e.g. a per-chunk RNG or accumulator).
void parallel_for_blocked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t min_block = 1);

}  // namespace scwc
