#include "common/string_util.hpp"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace scwc {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return s.substr(b, e - b);
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

}  // namespace scwc
