#include "common/cli.hpp"

#include <iostream>
#include <sstream>

#include "common/error.hpp"
#include "common/string_util.hpp"

namespace scwc {

void CliParser::add_flag(const std::string& name, std::string default_value,
                         std::string help) {
  SCWC_REQUIRE(!flags_.contains(name), "duplicate flag --" + name);
  flags_[name] = Flag{default_value, default_value, std::move(help)};
  order_.push_back(name);
}

void CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      // --help goes to stdout by contract (pipeable, not a diagnostic).
      std::cout << usage(argv[0]);  // scwc-lint: allow(no-stdout-in-lib)
      help_requested_ = true;
      return;
    }
    SCWC_REQUIRE(starts_with(arg, "--"), "unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string name;
    std::string value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      const auto it = flags_.find(name);
      SCWC_REQUIRE(it != flags_.end(), "unknown flag --" + name);
      // Boolean switches may omit the value ("--verbose").
      const bool is_bool_default = it->second.default_value == "true" ||
                                   it->second.default_value == "false";
      if (is_bool_default &&
          (i + 1 >= argc || starts_with(argv[i + 1], "--"))) {
        value = "true";
      } else {
        SCWC_REQUIRE(i + 1 < argc, "flag --" + name + " expects a value");
        value = argv[++i];
      }
    }
    const auto it = flags_.find(name);
    SCWC_REQUIRE(it != flags_.end(), "unknown flag --" + name);
    it->second.value = value;
  }
}

const std::string& CliParser::get_string(const std::string& name) const {
  const auto it = flags_.find(name);
  SCWC_REQUIRE(it != flags_.end(), "flag --" + name + " was not registered");
  return it->second.value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string& v = get_string(name);
  try {
    return std::stoll(v);
  } catch (...) {
    SCWC_FAIL("flag --" + name + " expects an integer, got '" + v + "'");
  }
}

double CliParser::get_double(const std::string& name) const {
  const std::string& v = get_string(name);
  try {
    return std::stod(v);
  } catch (...) {
    SCWC_FAIL("flag --" + name + " expects a number, got '" + v + "'");
  }
}

bool CliParser::get_bool(const std::string& name) const {
  const std::string v = to_lower(get_string(name));
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  SCWC_FAIL("flag --" + name + " expects a boolean, got '" + v + "'");
}

std::string CliParser::usage(const std::string& argv0) const {
  std::ostringstream os;
  if (!description_.empty()) os << description_ << "\n\n";
  os << "usage: " << argv0 << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name << " (default: " << f.default_value << ")\n        "
       << f.help << '\n';
  }
  return os.str();
}

}  // namespace scwc
