#include "common/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <optional>

#include "common/env.hpp"
#include "common/mutex.hpp"

namespace scwc {

namespace {

LogLevel parse_level(const std::optional<std::string>& text) {
  if (!text.has_value()) return LogLevel::kInfo;
  const std::string_view s(*text);
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& threshold_storage() noexcept {
  static std::atomic<int> level{
      static_cast<int>(parse_level(env_string("SCWC_LOG")))};
  return level;
}

// Leaf of the lock hierarchy: guards std::cerr line interleaving only, and
// no other lock is ever acquired while it is held.
Mutex& log_mutex() noexcept {
  static Mutex m{"log.stream"};
  return m;
}

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

/// Small sequential id instead of the opaque std::thread::id — stable for
/// the thread's lifetime, readable when workers interleave.
unsigned thread_tag() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// "2026-08-05T12:34:56.789Z" — UTC with millisecond resolution.
std::string iso8601_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[40];
  const std::size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%S", &tm);
  std::snprintf(buf + n, sizeof(buf) - n, ".%03dZ", static_cast<int>(ms));
  return buf;
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_line(LogLevel level, std::string_view message) {
  // The SCWC_LOG_AT macro already gates on the threshold before formatting;
  // this guard keeps direct callers from bypassing SCWC_LOG=off.
  if (static_cast<int>(level) < static_cast<int>(log_threshold())) return;
  const std::string stamp = iso8601_now();
  const unsigned tid = thread_tag();
  const LockGuard lock(log_mutex());
  std::cerr << "[scwc:" << level_tag(level) << ' ' << stamp << " t"
            << tid << "] " << message << '\n';
}

}  // namespace detail
}  // namespace scwc
