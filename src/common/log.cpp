#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>

namespace scwc {

namespace {

LogLevel parse_level(const char* text) {
  if (text == nullptr) return LogLevel::kInfo;
  const std::string_view s(text);
  if (s == "debug") return LogLevel::kDebug;
  if (s == "info") return LogLevel::kInfo;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "error") return LogLevel::kError;
  if (s == "off") return LogLevel::kOff;
  return LogLevel::kInfo;
}

std::atomic<int>& threshold_storage() noexcept {
  static std::atomic<int> level{
      static_cast<int>(parse_level(std::getenv("SCWC_LOG")))};
  return level;
}

std::mutex& log_mutex() noexcept {
  static std::mutex m;
  return m;
}

constexpr std::string_view level_tag(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarn:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
    default:
      return "?????";
  }
}

}  // namespace

LogLevel log_threshold() noexcept {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) noexcept {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace detail {

void log_line(LogLevel level, std::string_view message) {
  const std::lock_guard<std::mutex> lock(log_mutex());
  std::cerr << "[scwc:" << level_tag(level) << "] " << message << '\n';
}

}  // namespace detail
}  // namespace scwc
