// Error handling primitives for the Supercloud WCC library.
//
// The library follows the C++ Core Guidelines error model: programming
// errors (violated preconditions) are reported through SCWC_CHECK /
// SCWC_REQUIRE which throw scwc::Error with file/line context; recoverable
// conditions use status-returning APIs at the module boundary.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

namespace scwc {

/// Exception type thrown by all SCWC precondition and invariant checks.
///
/// Carries the failing expression, the source location and a free-form
/// message so that test failures and user errors are actionable.
class Error : public std::runtime_error {
 public:
  Error(std::string_view what_arg, std::string_view file, int line);

  /// Source file in which the check failed.
  [[nodiscard]] const std::string& file() const noexcept { return file_; }
  /// Source line at which the check failed.
  [[nodiscard]] int line() const noexcept { return line_; }

 private:
  std::string file_;
  int line_ = 0;
};

namespace detail {
[[noreturn]] void throw_error(std::string_view expr, std::string_view msg,
                              std::string_view file, int line);
}  // namespace detail

}  // namespace scwc

/// Precondition check: throws scwc::Error when `cond` is false.
/// `msg` may be any expression convertible to std::string.
#define SCWC_REQUIRE(cond, msg)                                       \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::scwc::detail::throw_error(#cond, (msg), __FILE__, __LINE__);  \
    }                                                                 \
  } while (false)

/// Internal invariant check. Semantically identical to SCWC_REQUIRE but
/// signals a library bug rather than caller misuse.
#define SCWC_CHECK(cond, msg) SCWC_REQUIRE(cond, msg)

/// Unconditional failure with message.
#define SCWC_FAIL(msg) \
  ::scwc::detail::throw_error("unreachable", (msg), __FILE__, __LINE__)
