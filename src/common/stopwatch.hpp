// Monotonic wall-clock stopwatch used by the experiment harness.
#pragma once

#include <chrono>

namespace scwc {

/// Starts running on construction; `seconds()` reads the elapsed time.
class Stopwatch {
 public:
  Stopwatch() noexcept : start_(clock::now()) {}

  /// Restarts the measurement.
  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

  /// Elapsed seconds since construction or the previous lap()/reset(), then
  /// restarts — one stopwatch times a sequence of phases instead of the
  /// reset-and-read pair per phase.
  [[nodiscard]] double lap() noexcept {
    const clock::time_point now = clock::now();
    const double s = std::chrono::duration<double>(now - start_).count();
    start_ = now;
    return s;
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace scwc
