// Small string helpers shared across modules (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace scwc {

/// Splits `s` on `sep`, keeping empty fields (CSV semantics).
std::vector<std::string> split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view trim(std::string_view s) noexcept;

/// Joins items with `sep`.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;

/// ASCII lower-casing (locale-free).
std::string to_lower(std::string_view s);

/// Formats a double with fixed precision, e.g. format_fixed(93.0152, 2)
/// == "93.02". Used by the table printers reproducing the paper's layout.
std::string format_fixed(double value, int digits);

}  // namespace scwc
