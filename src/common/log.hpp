// Minimal leveled logger.
//
// Bench binaries and examples narrate progress through this instead of raw
// std::cerr so verbosity is centrally controllable (SCWC_LOG=debug|info|
// warn|error|off). Logging is line-buffered and mutex-guarded so parallel
// sections interleave at line granularity.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace scwc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold. Initialised from the SCWC_LOG environment variable
/// on first use; defaults to kInfo.
LogLevel log_threshold() noexcept;

/// Overrides the global threshold (tests use this).
void set_log_threshold(LogLevel level) noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

/// Stream-style log statement: SCWC_LOG_INFO("trained " << n << " trees").
#define SCWC_LOG_AT(level, expr)                                      \
  do {                                                                \
    if (static_cast<int>(level) >=                                    \
        static_cast<int>(::scwc::log_threshold())) {                  \
      std::ostringstream scwc_log_os_;                                \
      scwc_log_os_ << expr;                                           \
      ::scwc::detail::log_line((level), scwc_log_os_.str());          \
    }                                                                 \
  } while (false)

#define SCWC_LOG_DEBUG(expr) SCWC_LOG_AT(::scwc::LogLevel::kDebug, expr)
#define SCWC_LOG_INFO(expr) SCWC_LOG_AT(::scwc::LogLevel::kInfo, expr)
#define SCWC_LOG_WARN(expr) SCWC_LOG_AT(::scwc::LogLevel::kWarn, expr)
#define SCWC_LOG_ERROR(expr) SCWC_LOG_AT(::scwc::LogLevel::kError, expr)

}  // namespace scwc
