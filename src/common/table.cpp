#include "common/table.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>

namespace scwc {

void TextTable::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

namespace {

std::string pad(const std::string& s, std::size_t width) {
  std::string out = s;
  out.resize(std::max(width, s.size()), ' ');
  return out;
}

std::string rule(const std::vector<std::size_t>& widths) {
  std::string out = "+";
  for (const std::size_t w : widths) {
    out += std::string(w + 2, '-');
    out += '+';
  }
  out += '\n';
  return out;
}

}  // namespace

std::string TextTable::render() const {
  std::size_t columns = header_.size();
  for (const auto& row : rows_) columns = std::max(columns, row.size());
  if (columns == 0) return title_.empty() ? std::string{} : title_ + "\n";

  std::vector<std::size_t> widths(columns, 0);
  const auto measure = [&widths](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  };
  measure(header_);
  for (const auto& row : rows_) measure(row);

  std::ostringstream os;
  if (!title_.empty()) os << title_ << '\n';
  const std::string sep = rule(widths);
  os << sep;
  const auto emit = [&os, &widths, columns](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < columns; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << pad(cell, widths[c]) << " |";
    }
    os << '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    os << sep;
  }
  for (const auto& row : rows_) emit(row);
  os << sep;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const TextTable& t) {
  return os << t.render();
}

}  // namespace scwc
