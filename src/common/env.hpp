// Environment configuration and experiment scale profiles.
//
// The paper's experiments (14.5 k trials × 540 steps, 1000-epoch LSTMs) are
// sized for a GPU cluster. This reproduction keeps every pipeline identical
// but exposes a scale knob so the whole suite also runs on one CPU core:
//
//   SCWC_SCALE=tiny|small|full   (default: small for benches, tiny in tests)
//
// Every bench prints the active profile next to its results so numbers are
// never compared across profiles by accident.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace scwc {

/// Reads an environment variable; empty optional when unset.
std::optional<std::string> env_string(const char* name);

/// Reads an integral environment variable; `fallback` when unset/invalid.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// Experiment sizing derived from SCWC_SCALE. All counts that the paper
/// fixes (26 classes, 7 sensors, 80/20 split, hyper-parameter grids) stay
/// fixed; the profile only scales corpus size, window length, RNN width and
/// epoch budget.
struct ScaleProfile {
  std::string name;          ///< "tiny", "small" or "full"
  double jobs_per_class;     ///< multiplier on Table VII–IX job counts
  std::size_t window_steps;  ///< samples per 60 s window (paper: 540 @ 9 Hz)
  double sample_hz;          ///< GPU sensor sampling rate implied by above
  double rnn_hidden_scale;   ///< multiplier on {128, 256, 512}
  std::size_t max_epochs;    ///< RNN epoch budget (paper: 1000)
  std::size_t patience;      ///< early-stopping patience (paper: 100)
  std::size_t svm_max_train; ///< cap on SVM training rows (0 = no cap)
  std::size_t cv_folds;      ///< grid-search folds (paper: 10 / 5 for XGB)
  std::size_t grid_row_cap;  ///< rows used during grid-search CV (0 = all)
  std::size_t rnn_max_train; ///< cap on RNN training trials (0 = all)

  /// Profile by name; throws on unknown names.
  static ScaleProfile named(std::string_view name);
  /// Profile selected by SCWC_SCALE, with `fallback` when unset.
  static ScaleProfile from_env(std::string_view fallback = "small");
};

}  // namespace scwc
