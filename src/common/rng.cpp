#include "common/rng.hpp"

#include <cmath>
#include <numbers>

namespace scwc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Rng Rng::fork() noexcept {
  // Mix two outputs into a fresh seed; child streams are decorrelated for
  // all practical purposes (SplitMix64 avalanche on the combined words).
  const std::uint64_t a = next_u64();
  const std::uint64_t b = next_u64();
  Rng child(a ^ rotl(b, 29) ^ 0xa0761d6478bd642fULL);
  return child;
}

double Rng::uniform() noexcept {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) noexcept {
  if (n == 0) return 0;
  // Lemire-style rejection for unbiased bounded integers.
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next_u64();
    if (r >= threshold) return r % n;
  }
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 is kept away from zero so std::log is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0x1.0p-53);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

bool Rng::bernoulli(double p) noexcept { return uniform() < p; }

double Rng::exponential(double lambda) noexcept {
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0x1.0p-53);
  return -std::log(u) / lambda;
}

std::size_t Rng::categorical(std::span<const double> weights) noexcept {
  double total = 0.0;
  for (const double w : weights) total += (w > 0.0 ? w : 0.0);
  if (total <= 0.0) return 0;
  double x = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (x < w) return i;
    x -= w;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) noexcept {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  shuffle(idx);
  return idx;
}

}  // namespace scwc
