#include "common/error.hpp"

#include <sstream>

namespace scwc {

namespace {
std::string format_what(std::string_view what_arg, std::string_view file,
                        int line) {
  std::ostringstream os;
  os << what_arg << " [" << file << ":" << line << "]";
  return os.str();
}
}  // namespace

Error::Error(std::string_view what_arg, std::string_view file, int line)
    : std::runtime_error(format_what(what_arg, file, line)),
      file_(file),
      line_(line) {}

namespace detail {

void throw_error(std::string_view expr, std::string_view msg,
                 std::string_view file, int line) {
  std::ostringstream os;
  os << "check failed: (" << expr << ") — " << msg;
  throw Error(os.str(), file, line);
}

}  // namespace detail
}  // namespace scwc
