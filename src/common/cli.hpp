// Tiny command-line flag parser used by the example binaries and benches.
//
// Supports "--name value" and "--name=value" forms plus boolean switches;
// unknown flags raise an error listing the registered options, which keeps
// example usage discoverable without a heavyweight dependency.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace scwc {

/// Declarative flag registry + parser.
class CliParser {
 public:
  explicit CliParser(std::string program_description = {})
      : description_(std::move(program_description)) {}

  /// Registers a string flag with a default value and help text.
  void add_flag(const std::string& name, std::string default_value,
                std::string help);

  /// Parses argv; throws scwc::Error on unknown flags or missing values.
  /// Recognises --help by printing usage and setting help_requested().
  void parse(int argc, const char* const* argv);

  [[nodiscard]] bool help_requested() const noexcept { return help_requested_; }

  /// Typed accessors. All throw if the flag was never registered.
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] bool get_bool(const std::string& name) const;

  /// Renders the usage/help text.
  [[nodiscard]] std::string usage(const std::string& argv0) const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
  };

  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  bool help_requested_ = false;
};

}  // namespace scwc
