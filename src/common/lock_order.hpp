// Debug-mode lock-hierarchy tracker (lockdep-style).
//
// Every scwc::Mutex acquisition/release reports here. The tracker keeps a
// per-thread stack of held locks and a global lock-order graph keyed by the
// mutex *name* (its lock class, not the instance address), so two threads
// nesting "a" inside "b" and "b" inside "a" are caught even when the runs
// never overlap — cycle detection finds the ABBA shape structurally, which
// is exactly what TSan's happened-before race detection cannot do.
//
// Violations are collected in a queryable list (tests assert on it) and
// reported once per lock-class pair to stderr; the process is NOT aborted,
// so a stress suite can finish and then inspect the graph.
//
// The whole tracker is compiled out unless SCWC_LOCK_ORDER_CHECK is
// defined (the asan/tsan presets turn it on via -DSCWC_LOCK_ORDER=ON);
// release builds pay nothing. Header-only on purpose: scwc_obs sits below
// scwc_common in the link order and must be able to use scwc::Mutex
// without linking a new library.
#pragma once

#include <string>
#include <utility>
#include <vector>

#if defined(SCWC_LOCK_ORDER_CHECK)
#include <algorithm>
#include <iostream>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

// The tracker's global graph and per-thread held stacks are intentionally
// immortal (see graph()/held_stack()); under LeakSanitizer that reads as a
// leak, so the allocations are explicitly registered as deliberate.
#if defined(__SANITIZE_ADDRESS__)
#define SCWC_LOCK_ORDER_HAS_LSAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define SCWC_LOCK_ORDER_HAS_LSAN 1
#endif
#endif
#if defined(SCWC_LOCK_ORDER_HAS_LSAN)
#include <sanitizer/lsan_interface.h>
#define SCWC_LOCK_ORDER_IGNORE_LEAK(p) __lsan_ignore_object(p)
#else
#define SCWC_LOCK_ORDER_IGNORE_LEAK(p) (static_cast<void>(p))
#endif
#endif

namespace scwc::lock_order {

/// One detected ordering conflict between two lock classes.
struct Violation {
  std::string first;           ///< lock class acquired first this time
  std::string second;          ///< lock class being acquired under `first`
  std::string existing_order;  ///< the order already in the graph, rendered
  std::string new_order;       ///< the conflicting order just observed
  std::string message;         ///< full human-readable report
};

/// True when the tracker is compiled in (asan/tsan presets).
constexpr bool enabled() noexcept {
#if defined(SCWC_LOCK_ORDER_CHECK)
  return true;
#else
  return false;
#endif
}

#if defined(SCWC_LOCK_ORDER_CHECK)

namespace detail {

struct Held {
  const void* addr;
  const char* name;
};

struct Graph {
  // Guards everything below. A raw std::mutex on purpose: routing it
  // through scwc::Mutex would recurse into the tracker.
  std::mutex mu;
  std::map<std::string, std::set<std::string>> edges;  // first -> seconds
  std::set<std::pair<std::string, std::string>> reported;
  std::vector<Violation> violations;
};

inline Graph& graph() {
  // Intentionally immortal (never destroyed): ThreadPool::global() and
  // other function-local statics own worker threads that still lock
  // mutexes while destructing after main, and this graph is constructed
  // lazily — i.e. later — so a plain static would be torn down first and
  // those late acquisitions would corrupt freed map nodes. Debug-only
  // build, one small object: leaking beats a destruction-order race.
  static Graph* g = new Graph;  // scwc-lint: allow(no-naked-new)
  SCWC_LOCK_ORDER_IGNORE_LEAK(g);
  return *g;
}

inline std::vector<Held>& held_stack() {
  // Immortal per-thread for the same reason: the main thread's
  // thread_local destructors interleave with static destruction, and a
  // mutex locked after this vector died would be a use-after-destroy.
  thread_local std::vector<Held>* stack = [] {
    auto* s = new std::vector<Held>;  // scwc-lint: allow(no-naked-new)
    SCWC_LOCK_ORDER_IGNORE_LEAK(s);
    return s;
  }();
  return *stack;
}

/// DFS: is `to` reachable from `from` in the order graph? Fills `path`
/// with the node sequence from→…→to when found.
inline bool reachable(const Graph& g, const std::string& from,
                      const std::string& to, std::vector<std::string>* path) {
  path->push_back(from);
  if (from == to) return true;
  const auto it = g.edges.find(from);
  if (it != g.edges.end()) {
    for (const std::string& next : it->second) {
      if (std::find(path->begin(), path->end(), next) != path->end()) {
        continue;  // already on the current path — don't loop
      }
      if (reachable(g, next, to, path)) return true;
    }
  }
  path->pop_back();
  return false;
}

inline std::string render_path(const std::vector<std::string>& path) {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i != 0) os << " -> ";
    os << '"' << path[i] << '"';
  }
  return os.str();
}

}  // namespace detail

/// Records that the current thread is about to acquire `m` (named `name`).
/// Called BEFORE the underlying lock blocks, so an acquisition that would
/// deadlock still leaves its evidence in the graph.
inline void note_acquire(const void* m, const char* name) {
  auto& stack = detail::held_stack();
  if (!stack.empty()) {
    auto& g = detail::graph();
    const std::lock_guard<std::mutex> lock(g.mu);
    const std::string to(name);
    for (const detail::Held& held : stack) {
      const std::string from(held.name);
      // Same lock class: two instances of one class may legitimately nest
      // (and an ordering *within* one class is invisible to a name-keyed
      // graph), so self-edges are skipped rather than reported.
      if (from == to) continue;
      if (g.edges[from].contains(to)) continue;  // known order, already vetted
      std::vector<std::string> path;
      if (detail::reachable(g, to, from, &path)) {
        // The graph already proves `to` precedes `from`; acquiring `to`
        // while holding `from` closes a cycle — the ABBA shape.
        const auto key = std::minmax(from, to);
        if (!g.reported.contains(key)) {
          g.reported.insert(key);
          Violation v;
          v.first = from;
          v.second = to;
          v.existing_order = detail::render_path(path);
          v.new_order = "\"" + from + "\" -> \"" + to + "\"";
          std::ostringstream os;
          os << "lock-order violation: acquiring \"" << to
             << "\" while holding \"" << from
             << "\" contradicts the established order " << v.existing_order
             << " — potential ABBA deadlock between \"" << from << "\" and \""
             << to << "\"";
          v.message = os.str();
          // Debug-only diagnostic; stderr keeps the tracker free of any
          // dependency on the scwc_common logger (obs sits below common).
          std::cerr << "[scwc:lock-order] " << v.message << '\n';
          g.violations.push_back(std::move(v));
        }
      }
      g.edges[from].insert(to);  // record the observed order either way
    }
  }
  stack.push_back(detail::Held{m, name});
}

/// Records that the current thread released `m`. Out-of-order release is
/// legal (LockGuard::unlock before another guard's destructor): the entry
/// is found by address, scanning from the innermost lock outward.
inline void note_release(const void* m) noexcept {
  auto& stack = detail::held_stack();
  for (std::size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1].addr == m) {
      stack.erase(stack.begin() + static_cast<std::ptrdiff_t>(i - 1));
      return;
    }
  }
}

/// Snapshot of all detected ordering conflicts so far.
inline std::vector<Violation> violations() {
  auto& g = detail::graph();
  const std::lock_guard<std::mutex> lock(g.mu);
  return g.violations;
}

/// Snapshot of the observed order graph as (first, second) edges.
inline std::vector<std::pair<std::string, std::string>> edges() {
  auto& g = detail::graph();
  const std::lock_guard<std::mutex> lock(g.mu);
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& [from, tos] : g.edges) {
    for (const std::string& to : tos) out.emplace_back(from, to);
  }
  return out;
}

/// True when the observed order graph has no cycle — i.e. a single global
/// lock hierarchy exists that explains every acquisition seen so far.
inline bool acyclic() {
  auto& g = detail::graph();
  const std::lock_guard<std::mutex> lock(g.mu);
  for (const auto& [from, tos] : g.edges) {
    for (const std::string& to : tos) {
      std::vector<std::string> path;
      if (detail::reachable(g, to, from, &path)) return false;
    }
  }
  return true;
}

/// Test hook: forgets the global graph and violation list. Per-thread
/// held stacks are left alone (they drain naturally as guards unwind).
inline void clear() {
  auto& g = detail::graph();
  const std::lock_guard<std::mutex> lock(g.mu);
  g.edges.clear();
  g.reported.clear();
  g.violations.clear();
}

#else  // !SCWC_LOCK_ORDER_CHECK — release builds: everything is a no-op.

inline void note_acquire(const void*, const char*) noexcept {}
inline void note_release(const void*) noexcept {}
inline std::vector<Violation> violations() { return {}; }
inline std::vector<std::pair<std::string, std::string>> edges() { return {}; }
inline bool acyclic() { return true; }
inline void clear() {}

#endif  // SCWC_LOCK_ORDER_CHECK

}  // namespace scwc::lock_order
