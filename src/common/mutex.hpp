// Annotated synchronization primitives.
//
// scwc::Mutex / scwc::LockGuard / scwc::CondVar wrap the std primitives
// with three additions:
//   1. Clang thread-safety capability annotations (thread_annotations.hpp),
//      so the `tsa` preset proves GUARDED_BY/REQUIRES contracts at compile
//      time — on GCC they cost nothing.
//   2. A lock-class name, fed to the debug-mode lock-hierarchy tracker
//      (lock_order.hpp) under the asan/tsan presets.
//   3. A single choke point the `no-raw-std-mutex` lint rule can enforce:
//      library code must not use std::mutex directly.
//
// Header-only on purpose: scwc_obs sits below scwc_common in the link
// order and must be able to use these without a new library dependency.
//
// CondVar waits follow the abseil shape — `cv.wait(mutex_)` inside an
// explicit `while (!predicate)` loop, with a LockGuard already holding the
// mutex. Clang's analysis does not look into predicate lambdas, so the
// std::condition_variable::wait(lock, pred) form is deliberately absent.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/lock_order.hpp"
#include "common/thread_annotations.hpp"

// This header and lock_order.hpp are the one place raw std primitives are
// allowed — the no-raw-std-mutex rule exempts them by path (is_sync_impl).

namespace scwc {

/// A std::mutex with a TSA capability and a lock-class name for the
/// lock-order tracker. Name instances hierarchically: "pool.queue",
/// "serve.registry" — the DESIGN.md §8 table is keyed on these.
class SCWC_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(const char* name) noexcept : name_(name) {}
  Mutex() noexcept : name_("unnamed") {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() SCWC_ACQUIRE() {
    lock_order::note_acquire(this, name_);
    m_.lock();
  }

  void unlock() SCWC_RELEASE() {
    m_.unlock();
    lock_order::note_release(this);
  }

  bool try_lock() SCWC_TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    // A failed try_lock imposes no ordering constraint (it cannot block),
    // so only successful acquisitions reach the tracker.
    lock_order::note_acquire(this, name_);
    return true;
  }

  const char* name() const noexcept { return name_; }

 private:
  friend class CondVar;  // wait() needs the raw handle for adopt_lock
  std::mutex m_;
  const char* name_;
};

/// RAII lock over scwc::Mutex, annotated as a scoped capability. Supports
/// mid-scope unlock()/lock() for the "drop the lock around the callback"
/// pattern, which the analysis tracks precisely.
class SCWC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& m) SCWC_ACQUIRE(m) : m_(&m), held_(true) {
    m_->lock();
  }

  ~LockGuard() SCWC_RELEASE() {
    if (held_) m_->unlock();
  }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

  /// Drops the lock early (e.g. before notifying or running a callback).
  void unlock() SCWC_RELEASE() {
    m_->unlock();
    held_ = false;
  }

  /// Re-acquires after an early unlock().
  void lock() SCWC_ACQUIRE() {
    m_->lock();
    held_ = true;
  }

 private:
  Mutex* m_;
  bool held_;
};

/// Condition variable over scwc::Mutex. The caller holds the mutex via a
/// LockGuard and passes the *mutex* so the REQUIRES contract is visible to
/// the analysis:
///
///   scwc::LockGuard lock(mutex_);
///   while (!ready_) cv_.wait(mutex_);
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `m`, waits, and re-acquires before returning.
  /// The lock-order tracker keeps `m` on the held stack across the wait:
  /// the blocked thread acquires nothing while parked, and on wake the
  /// stack is accurate again, so no false edges can form.
  void wait(Mutex& m) SCWC_REQUIRES(m) {
    std::unique_lock<std::mutex> native(m.m_, std::adopt_lock);
    cv_.wait(native);
    native.release();  // ownership stays with the caller's LockGuard
  }

  /// Timed wait; returns std::cv_status::timeout when `deadline` passed.
  template <class Clock, class Duration>
  std::cv_status wait_until(
      Mutex& m, const std::chrono::time_point<Clock, Duration>& deadline)
      SCWC_REQUIRES(m) {
    std::unique_lock<std::mutex> native(m.m_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace scwc
