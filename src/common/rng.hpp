// Deterministic pseudo-random number generation.
//
// The standard library distributions are not bit-reproducible across
// implementations, so every stochastic component in SCWC draws from this
// header instead: a xoshiro256** engine seeded through SplitMix64, with
// hand-rolled uniform / normal / log-normal / categorical transforms.
// Two runs with the same seed produce identical corpora, splits, models
// and accuracies on any platform.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace scwc {

/// SplitMix64 — used to expand a single 64-bit seed into engine state.
/// Passes BigCrush when used directly; here it only seeds xoshiro.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna — fast, high-quality, tiny state.
///
/// Satisfies std::uniform_random_bit_generator so it can also be handed to
/// standard algorithms (e.g. std::shuffle replacements) if ever needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single user seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eedC0FFEEULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Derives an independent child stream; used to give every parallel task
  /// (tree, job, fold) its own generator so results are schedule-invariant.
  [[nodiscard]] Rng fork() noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_index(std::uint64_t n) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Standard normal via Box–Muller (cached second variate).
  double normal() noexcept;
  /// Normal with given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;
  /// Log-normal: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;
  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) noexcept;
  /// Exponential with rate lambda (> 0).
  double exponential(double lambda) noexcept;
  /// Samples an index from unnormalised non-negative weights.
  std::size_t categorical(std::span<const double> weights) noexcept;

  /// Fisher–Yates shuffle of an index container.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// A random permutation of 0..n-1.
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace scwc
