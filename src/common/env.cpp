#include "common/env.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace scwc {

std::optional<std::string> env_string(const char* name) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const auto v = env_string(name);
  if (!v) return fallback;
  try {
    std::size_t pos = 0;
    const std::int64_t parsed = std::stoll(*v, &pos);
    if (pos != v->size()) return fallback;
    return parsed;
  } catch (...) {
    return fallback;
  }
}

ScaleProfile ScaleProfile::named(std::string_view name) {
  // window_steps/sample_hz keep the 60 s window semantics at every scale:
  // tiny samples at 1 Hz (60 steps), small at 1.5 Hz (90), full matches the
  // paper's 9 Hz (540 steps).
  if (name == "tiny") {
    return ScaleProfile{
        .name = "tiny",
        .jobs_per_class = 0.06,
        .window_steps = 60,
        .sample_hz = 1.0,
        .rnn_hidden_scale = 0.25,
        .max_epochs = 32,
        .patience = 10,
        .svm_max_train = 0,
        .cv_folds = 3,
        .grid_row_cap = 400,
        .rnn_max_train = 420,
    };
  }
  if (name == "small") {
    return ScaleProfile{
        .name = "small",
        .jobs_per_class = 0.15,
        .window_steps = 90,
        .sample_hz = 1.5,
        .rnn_hidden_scale = 0.25,
        .max_epochs = 30,
        .patience = 10,
        .svm_max_train = 0,
        .cv_folds = 3,
        .grid_row_cap = 800,
        .rnn_max_train = 700,
    };
  }
  if (name == "full") {
    return ScaleProfile{
        .name = "full",
        .jobs_per_class = 1.0,
        .window_steps = 540,
        .sample_hz = 9.0,
        .rnn_hidden_scale = 1.0,
        .max_epochs = 1000,
        .patience = 100,
        .svm_max_train = 4000,
        .cv_folds = 10,
        .grid_row_cap = 0,
        .rnn_max_train = 0,
    };
  }
  SCWC_FAIL("unknown SCWC_SCALE profile: " + std::string(name) +
            " (expected tiny|small|full)");
}

ScaleProfile ScaleProfile::from_env(std::string_view fallback) {
  const auto v = env_string("SCWC_SCALE");
  return named(v ? std::string_view(*v) : fallback);
}

}  // namespace scwc
