#include "obs/export.hpp"

#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace scwc::obs {

namespace {

Json histogram_to_json(const HistogramSnapshot& h) {
  Json::Array buckets;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    Json::Object b;
    b.emplace("le", i < h.bounds.size()
                        ? Json(h.bounds[i])
                        : Json("+Inf"));
    b.emplace("count", Json(h.buckets[i]));
    buckets.push_back(Json(std::move(b)));
  }
  Json::Object out;
  out.emplace("count", Json(h.count));
  out.emplace("sum", Json(h.sum));
  out.emplace("p50", Json(h.p50));
  out.emplace("p90", Json(h.p90));
  out.emplace("p99", Json(h.p99));
  out.emplace("p999", Json(h.p999));
  out.emplace("buckets", Json(std::move(buckets)));
  return Json(std::move(out));
}

Json rolling_to_json(const RollingHistogramSnapshot& r) {
  Json::Object out;
  out.emplace("window_s", Json(r.window_s));
  out.emplace("count", Json(r.count));
  out.emplace("sum", Json(r.sum));
  out.emplace("p50", Json(r.p50));
  out.emplace("p90", Json(r.p90));
  out.emplace("p99", Json(r.p99));
  out.emplace("p999", Json(r.p999));
  return Json(std::move(out));
}

Json span_to_json(const SpanStats& span) {
  Json::Object out;
  out.emplace("name", Json(span.name));
  out.emplace("calls", Json(span.calls));
  out.emplace("total_s", Json(span.total_s));
  out.emplace("self_s", Json(span.self_s));
  Json::Array children;
  for (const SpanStats& child : span.children) {
    children.push_back(span_to_json(child));
  }
  out.emplace("children", Json(std::move(children)));
  return Json(std::move(out));
}

/// Prometheus number formatting: plain decimal, +Inf for the overflow le.
std::string prom_double(double v) {
  std::ostringstream os;
  if (std::isinf(v)) {
    os << (v > 0 ? "+Inf" : "-Inf");
  } else {
    Json(v).write(os);
  }
  return os.str();
}

void render_span(std::ostream& os, const SpanStats& span, int depth) {
  std::ostringstream line;  // keeps formatting state off the caller's stream
  line << std::fixed << std::setprecision(3);
  for (int i = 0; i < depth; ++i) line << "  ";
  line << span.name << "  calls=" << span.calls << "  total=" << span.total_s
       << "s  self=" << span.self_s << 's';
  os << line.str() << '\n';
  for (const SpanStats& child : span.children) {
    render_span(os, child, depth + 1);
  }
}

}  // namespace

Json metrics_to_json(const MetricsSnapshot& snapshot) {
  Json::Object counters;
  for (const auto& [name, value] : snapshot.counters) {
    counters.emplace(name, Json(value));
  }
  Json::Object gauges;
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.emplace(name, Json(value));
  }
  Json::Object histograms;
  for (const HistogramSnapshot& h : snapshot.histograms) {
    histograms.emplace(h.name, histogram_to_json(h));
  }
  Json::Object out;
  out.emplace("counters", Json(std::move(counters)));
  out.emplace("gauges", Json(std::move(gauges)));
  out.emplace("histograms", Json(std::move(histograms)));
  if (!snapshot.rolling.empty()) {  // omit key: keep legacy artifact shape
    Json::Object rolling;
    for (const RollingHistogramSnapshot& r : snapshot.rolling) {
      rolling.emplace(r.name, rolling_to_json(r));
    }
    out.emplace("rolling", Json(std::move(rolling)));
  }
  return Json(std::move(out));
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(legal ? c : '_');
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string sanitize_label_value(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

Json span_tree_to_json(const SpanStats& root) {
  Json::Array spans;
  for (const SpanStats& child : root.children) {
    spans.push_back(span_to_json(child));
  }
  return Json(std::move(spans));
}

std::string to_prometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const auto& [raw_name, value] : snapshot.counters) {
    const std::string name = sanitize_metric_name(raw_name);
    os << "# TYPE " << name << " counter\n" << name << ' ' << value << '\n';
  }
  for (const auto& [raw_name, value] : snapshot.gauges) {
    const std::string name = sanitize_metric_name(raw_name);
    os << "# TYPE " << name << " gauge\n"
       << name << ' ' << prom_double(value) << '\n';
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = sanitize_metric_name(h.name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cumulative += h.buckets[i];
      const std::string le = sanitize_label_value(
          i < h.bounds.size() ? prom_double(h.bounds[i]) : "+Inf");
      os << name << "_bucket{le=\"" << le << "\"} " << cumulative << '\n';
    }
    os << name << "_sum " << prom_double(h.sum) << '\n';
    os << name << "_count " << h.count << '\n';
  }
  // Rolling histograms surface as Prometheus summaries: last-window_s
  // quantiles are exactly a summary's sliding-window semantics. The
  // window itself rides along as a companion gauge.
  for (const RollingHistogramSnapshot& r : snapshot.rolling) {
    const std::string name = sanitize_metric_name(r.name);
    os << "# TYPE " << name << " summary\n";
    os << name << "{quantile=\"0.5\"} " << prom_double(r.p50) << '\n';
    os << name << "{quantile=\"0.9\"} " << prom_double(r.p90) << '\n';
    os << name << "{quantile=\"0.99\"} " << prom_double(r.p99) << '\n';
    os << name << "{quantile=\"0.999\"} " << prom_double(r.p999) << '\n';
    os << name << "_sum " << prom_double(r.sum) << '\n';
    os << name << "_count " << r.count << '\n';
    os << "# TYPE " << name << "_window_seconds gauge\n";
    os << name << "_window_seconds " << prom_double(r.window_s) << '\n';
  }
  return os.str();
}

void render_span_tree(std::ostream& os, const SpanStats& root) {
  if (root.children.empty()) {
    os << "(no spans recorded)\n";
    return;
  }
  for (const SpanStats& child : root.children) {
    render_span(os, child, 0);
  }
}

}  // namespace scwc::obs
