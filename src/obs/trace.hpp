// Hierarchical wall-time tracing.
//
// A TraceSpan is an RAII scope timer that nests into a per-thread span
// stack: spans opened while another span is live on the same thread become
// its children. Completed spans aggregate by (path, name) into one global
// timing tree — name → calls, total and self wall time — which replaces
// the scatter of raw Stopwatch reads in the experiment harness.
//
// Cost model: one steady_clock read plus one short mutex hold at
// construction and destruction. Spans belong around phases (an epoch, a
// boosting round, a pipeline stage), not around per-row work — counters
// cover those. When observability is disabled (SCWC_OBS=off) a span is a
// no-op and nothing is recorded.
//
// Threading: nesting is tracked per thread. A span opened on a ThreadPool
// worker while the main thread is inside a span does NOT nest under it —
// it aggregates at the top level of the tree (concurrent children cannot
// be attributed to one parent without cross-thread context propagation).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scwc::obs {

/// Aggregated statistics of one span node in the timing tree.
struct SpanStats {
  std::string name;
  std::uint64_t calls = 0;
  double total_s = 0.0;  ///< wall time including children
  double self_s = 0.0;   ///< total_s − Σ children.total_s (≥ 0)
  std::vector<SpanStats> children;
};

/// RAII scope timer. Construct with the span name; destruction records the
/// elapsed wall time into the global tree.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;
  TraceSpan(TraceSpan&&) = delete;
  TraceSpan& operator=(TraceSpan&&) = delete;

 private:
  void* node_ = nullptr;    ///< SpanNode*; nullptr when tracing is disabled
  void* parent_ = nullptr;  ///< this thread's node before the span opened
  std::chrono::steady_clock::time_point start_;
};

/// Copies the aggregated tree. The returned root is synthetic (empty name,
/// zero time); real spans are its children. total_s of in-flight spans is
/// not included — snapshot after the spans of interest have closed.
[[nodiscard]] SpanStats span_tree_snapshot();

/// Σ total_s over the snapshot's top-level spans — the wall time the trace
/// accounts for (may exceed real wall time when top-level spans ran on
/// concurrent threads).
[[nodiscard]] double total_traced_seconds(const SpanStats& root) noexcept;

/// Drops the whole tree (tests and benches that run several phases).
void reset_span_tree();

}  // namespace scwc::obs
