// Minimal HTTP/1.1 scrape endpoint (GET-only, std + POSIX sockets).
//
// Just enough HTTP to let `curl` and a Prometheus scraper pull /metrics,
// /healthz and /vars from a live serving process — deliberately NOT a web
// framework: one blocking accept loop on its own thread, one connection
// served at a time, GET only, no keep-alive, no TLS. Handlers are
// registered before start() and produce the whole body per request; a
// throwing handler maps to a 500.
//
// Security posture (DESIGN.md §7): binds 127.0.0.1 by default — the
// endpoint exposes operational detail and has no auth, so non-loopback
// binds are an explicit opt-in. Port 0 requests an ephemeral port; port()
// reports the bound one (tests rely on this to avoid collisions).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace scwc::obs {

struct ScrapeConfig {
  std::uint16_t port = 0;     ///< 0 → kernel-assigned ephemeral port
  bool loopback_only = true;  ///< bind 127.0.0.1 (default) vs 0.0.0.0
  int backlog = 16;
  double io_timeout_s = 2.0;  ///< per-connection read/write timeout
};

class ScrapeServer {
 public:
  /// Returns the response body; content type comes from registration.
  using Handler = std::function<std::string()>;

  explicit ScrapeServer(ScrapeConfig config = {});
  ~ScrapeServer();  // stops and joins

  ScrapeServer(const ScrapeServer&) = delete;
  ScrapeServer& operator=(const ScrapeServer&) = delete;

  /// Registers `path` (exact match, query string ignored). Must be called
  /// before start(); throws std::logic_error afterwards.
  void add_route(std::string path, std::string content_type, Handler handler);

  /// Binds, listens and launches the accept thread. Throws
  /// std::runtime_error when the socket cannot be set up.
  void start();

  /// Stops the accept loop and joins the thread. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_acquire);
  }
  /// Actual bound port (resolves port-0 requests); 0 before start().
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  struct Route {
    std::string content_type;
    Handler handler;
  };

  void accept_loop();
  void serve_connection(int fd);

  // Lock-free by construction, not by accident: config_/routes_/listen_fd_/
  // bound_port_ are written only before start() spawns the accept thread
  // and are read-only afterwards (route() refuses registration once
  // running). Cross-thread state is limited to the two atomics. If routes
  // ever become mutable at runtime, add a scwc::Mutex and GUARDED_BY here.
  ScrapeConfig config_;
  std::map<std::string, Route> routes_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::thread thread_;
};

}  // namespace scwc::obs
