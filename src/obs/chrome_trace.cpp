#include "obs/chrome_trace.hpp"

#include <fstream>
#include <utility>

namespace scwc::obs {

namespace {

constexpr double kMicro = 1e6;
constexpr int kRequestPid = 1;
constexpr int kSpanPid = 2;

Json x_event(const std::string& name, const std::string& cat, int pid,
             double tid, double ts_us, double dur_us, Json::Object args) {
  Json::Object e;
  e.emplace("ph", Json("X"));
  e.emplace("name", Json(name));
  e.emplace("cat", Json(cat));
  e.emplace("pid", Json(pid));
  e.emplace("tid", Json(tid));
  e.emplace("ts", Json(ts_us));
  e.emplace("dur", Json(dur_us));
  if (!args.empty()) e.emplace("args", Json(std::move(args)));
  return Json(std::move(e));
}

Json process_name_event(int pid, const std::string& name) {
  Json::Object args;
  args.emplace("name", Json(name));
  Json::Object e;
  e.emplace("ph", Json("M"));
  e.emplace("name", Json("process_name"));
  e.emplace("pid", Json(pid));
  e.emplace("tid", Json(0));
  e.emplace("args", Json(std::move(args)));
  return Json(std::move(e));
}

void append_request_events(Json::Array& events,
                           const RequestTraceRecord& rec) {
  const auto tid = static_cast<double>(rec.trace_id);
  const double start_us = rec.start_s * kMicro;

  Json::Object args;
  args.emplace("trace_id", Json(static_cast<double>(rec.trace_id)));
  args.emplace("job_id", Json(static_cast<double>(rec.job_id)));
  args.emplace("outcome", Json(rec.outcome));
  args.emplace("model_version", Json(rec.model_version));
  args.emplace("batch_size", Json(rec.batch_size));
  args.emplace("degrade_level", Json(rec.degrade_level));
  events.push_back(x_event("request", "request", kRequestPid, tid, start_us,
                           rec.phases.total_s * kMicro, std::move(args)));

  // Phases laid out back-to-back inside the parent slice. The layout is
  // schematic: transform/predict are batch-level times attributed to each
  // member, so the chain may underrun (idle tail) but never misleads
  // about per-phase magnitudes.
  const std::pair<const char*, double> phases[] = {
      {"admission", rec.phases.admission_s},
      {"route", rec.phases.route_s},
      {"wire_send", rec.phases.wire_send_s},
      {"queue", rec.phases.queue_s},
      {"batch_wait", rec.phases.batch_wait_s},
      {"transform", rec.phases.transform_s},
      {"predict", rec.phases.predict_s},
      {"wire_recv", rec.phases.wire_recv_s},
  };
  double cursor_us = start_us;
  for (const auto& [name, dur_s] : phases) {
    if (dur_s <= 0.0) continue;
    events.push_back(x_event(name, "phase", kRequestPid, tid, cursor_us,
                             dur_s * kMicro, {}));
    cursor_us += dur_s * kMicro;
  }
}

/// Span aggregates carry durations, not start times; render each subtree
/// sequentially from `start_us` so nesting stays truthful to the
/// parent/child containment. Returns the span's end time.
double append_span_events(Json::Array& events, const SpanStats& span,
                          double start_us) {
  Json::Object args;
  args.emplace("calls", Json(span.calls));
  args.emplace("self_s", Json(span.self_s));
  events.push_back(x_event(span.name, "span", kSpanPid, 1.0, start_us,
                           span.total_s * kMicro, std::move(args)));
  double cursor_us = start_us;
  for (const SpanStats& child : span.children) {
    cursor_us = append_span_events(events, child, cursor_us);
  }
  return start_us + span.total_s * kMicro;
}

}  // namespace

Json chrome_trace_json(std::span<const RequestTraceRecord> records,
                       const SpanStats& span_root, Json::Object meta) {
  Json::Array events;
  events.push_back(process_name_event(kRequestPid, "scwc requests"));
  events.push_back(process_name_event(kSpanPid, "scwc span tree"));
  for (const RequestTraceRecord& rec : records) {
    append_request_events(events, rec);
  }
  double cursor_us = 0.0;
  for (const SpanStats& child : span_root.children) {
    cursor_us = append_span_events(events, child, cursor_us);
  }
  Json::Object doc;
  doc.emplace("displayTimeUnit", Json("ms"));
  doc.emplace("traceEvents", Json(std::move(events)));
  if (!meta.empty()) doc.emplace("scwcMeta", Json(std::move(meta)));
  return Json(std::move(doc));
}

std::string validate_chrome_trace_json(const Json& doc) {
  if (!doc.is_object()) return "root is not an object";
  if (!doc.contains("traceEvents")) return "missing traceEvents";
  const Json& events = doc.at("traceEvents");
  if (!events.is_array()) return "traceEvents is not an array";
  std::size_t i = 0;
  for (const Json& event : events.as_array()) {
    const std::string where = "traceEvents[" + std::to_string(i++) + "]";
    if (!event.is_object()) return where + " is not an object";
    for (const char* key : {"ph", "name"}) {
      if (!event.contains(key) || !event.at(key).is_string()) {
        return where + " lacks string " + key;
      }
    }
    for (const char* key : {"pid", "tid"}) {
      if (!event.contains(key) || !event.at(key).is_number()) {
        return where + " lacks numeric " + key;
      }
    }
    const std::string& ph = event.at("ph").as_string();
    if (ph == "X") {
      for (const char* key : {"ts", "dur"}) {
        if (!event.contains(key) || !event.at(key).is_number()) {
          return where + " lacks numeric " + key;
        }
        if (event.at(key).as_number() < 0.0) {
          return where + " has negative " + key;
        }
      }
    } else if (ph == "M") {
      if (!event.contains("args") || !event.at("args").is_object()) {
        return where + " metadata lacks args object";
      }
    } else {
      return where + " has unsupported ph \"" + ph + "\"";
    }
  }
  return "";
}

bool write_chrome_trace_file(const std::string& path,
                             std::span<const RequestTraceRecord> records,
                             const SpanStats& span_root, Json::Object meta) {
  std::ofstream out(path);
  if (!out) return false;
  chrome_trace_json(records, span_root, std::move(meta)).write(out, 2);
  out << '\n';
  return out.good();
}

}  // namespace scwc::obs
