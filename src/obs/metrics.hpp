// Runtime metrics for the whole SCWC stack.
//
// A MetricsRegistry hands out named counters, gauges and fixed-bucket
// histograms following the `scwc_<layer>_<name>` naming convention
// (DESIGN.md §7). The design targets hot loops:
//  * increments/observations are lock-free relaxed atomics — the registry
//    mutex is only taken when a handle is first acquired or a snapshot is
//    read;
//  * when observability is disabled (SCWC_OBS=off) handles wrap a null
//    pointer, every operation is a predictable test-and-skip, and nothing
//    is registered — a snapshot taken later is empty;
//  * handles stay valid for the registry's lifetime (metrics are
//    node-allocated and never move).
//
// This library is deliberately standalone (std + threads, plus the
// header-only annotated sync primitives in common/mutex.hpp) so that
// scwc_common itself — ThreadPool, logging — can be instrumented without a
// link-dependency cycle.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/rolling.hpp"

namespace scwc::obs {

/// Global observability switch. Initialised once from the SCWC_OBS
/// environment variable ("off", "0" or "false" disable; default on).
[[nodiscard]] bool enabled() noexcept;

/// Overrides the switch (tests and benches use this). Handles acquired
/// while disabled stay inert; re-acquire after enabling.
void set_enabled(bool on) noexcept;

/// Lock-free add for pre-C++20-fetch_add platforms.
inline void atomic_add(std::atomic<double>& a, double d) noexcept {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

/// Monotone event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-writer-wins instantaneous value (loss, LR, queue depth, …).
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  void add(double d) noexcept { atomic_add(value_, d); }
  [[nodiscard]] double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram over non-negative measurements (seconds, bytes).
/// Buckets are cumulative-upper-bound style (Prometheus `le`), with an
/// implicit +Inf overflow bucket.
class Histogram {
 public:
  /// `upper_bounds` must be strictly increasing and non-empty.
  explicit Histogram(std::vector<double> upper_bounds);

  /// Records one measurement. NaN and negative values are dropped (the
  /// drop is silent by design: observe runs on hot paths where a bad
  /// sample must not throw or log).
  void observe(double v) noexcept;

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Per-bucket counts (bounds().size() + 1 entries, last = overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

  /// Quantile estimate by linear interpolation inside the owning bucket
  /// (first bucket interpolates from 0; the overflow bucket clamps to the
  /// largest finite bound). Returns 0 when empty.
  [[nodiscard]] double quantile(double q) const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Null-safe wrappers handed out by the registry. Default-constructed (or
/// disabled-mode) handles are inert.
class CounterHandle {
 public:
  CounterHandle() = default;
  explicit CounterHandle(Counter* c) noexcept : c_(c) {}
  void inc(std::uint64_t n = 1) const noexcept {
    if (c_ != nullptr) c_->inc(n);
  }

 private:
  Counter* c_ = nullptr;
};

class GaugeHandle {
 public:
  GaugeHandle() = default;
  explicit GaugeHandle(Gauge* g) noexcept : g_(g) {}
  void set(double v) const noexcept {
    if (g_ != nullptr) g_->set(v);
  }
  void add(double d) const noexcept {
    if (g_ != nullptr) g_->add(d);
  }

 private:
  Gauge* g_ = nullptr;
};

class HistogramHandle {
 public:
  HistogramHandle() = default;
  explicit HistogramHandle(Histogram* h) noexcept : h_(h) {}
  void observe(double v) const noexcept {
    if (h_ != nullptr) h_->observe(v);
  }

 private:
  Histogram* h_ = nullptr;
};

/// Point-in-time copy of one histogram, with precomputed percentiles.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, last = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;
  std::vector<RollingHistogramSnapshot> rolling;
};

/// Value of a named counter in a snapshot; 0 when absent.
[[nodiscard]] std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                                          std::string_view name) noexcept;
/// Value of a named gauge in a snapshot; 0 when absent.
[[nodiscard]] double gauge_value(const MetricsSnapshot& snapshot,
                                 std::string_view name) noexcept;

/// Thread-safe name → metric directory. Instantiable for tests; production
/// code uses global().
class MetricsRegistry {
 public:
  /// Returns the named counter, creating it on first use. Inert handle
  /// when observability is disabled.
  CounterHandle counter(std::string_view name);
  GaugeHandle gauge(std::string_view name);
  /// `upper_bounds` applies on first registration only; later callers get
  /// the existing histogram regardless of the bounds they pass.
  HistogramHandle histogram(std::string_view name,
                            std::vector<double> upper_bounds =
                                default_seconds_buckets());
  /// Rolling (last-N-seconds) histogram; `upper_bounds` and `config`
  /// apply on first registration only, like histogram().
  RollingHistogramHandle rolling_histogram(std::string_view name,
                                           std::vector<double> upper_bounds =
                                               default_seconds_buckets(),
                                           RollingConfig config = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every registered metric (registrations — and therefore live
  /// handles — stay valid).
  void reset();

  /// Process-wide registry used by all instrumented code.
  static MetricsRegistry& global();

  /// 1 µs … ~100 s exponential grid for wall-time histograms.
  static std::vector<double> default_seconds_buckets();
  /// 64 B … 1 GiB exponential grid for size histograms.
  static std::vector<double> default_bytes_buckets();

 private:
  mutable Mutex mutex_{"obs.registry"};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SCWC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SCWC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SCWC_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<RollingHistogram>, std::less<>>
      rolling_ SCWC_GUARDED_BY(mutex_);
};

}  // namespace scwc::obs
