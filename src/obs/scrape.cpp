#include "obs/scrape.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace scwc::obs {

namespace {

constexpr std::size_t kMaxRequestBytes = 8192;

std::string status_line(int code) {
  switch (code) {
    case 200: return "HTTP/1.1 200 OK";
    case 404: return "HTTP/1.1 404 Not Found";
    case 405: return "HTTP/1.1 405 Method Not Allowed";
    case 500: return "HTTP/1.1 500 Internal Server Error";
    default: return "HTTP/1.1 400 Bad Request";
  }
}

std::string build_response(int code, const std::string& content_type,
                           const std::string& body) {
  std::string out = status_line(code);
  out += "\r\nContent-Type: " + content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone or timeout: nothing useful to do
    off += static_cast<std::size_t>(n);
  }
}

void set_io_timeout(int fd, double seconds) {
  if (!(seconds > 0.0)) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - std::floor(seconds)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

ScrapeServer::ScrapeServer(ScrapeConfig config) : config_(config) {}

ScrapeServer::~ScrapeServer() { stop(); }

void ScrapeServer::add_route(std::string path, std::string content_type,
                             Handler handler) {
  if (running()) {
    throw std::logic_error("ScrapeServer: add_route after start");
  }
  routes_[std::move(path)] =
      Route{std::move(content_type), std::move(handler)};
}

void ScrapeServer::start() {
  if (running()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("ScrapeServer: socket() failed");
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr =
      config_.loopback_only ? htonl(INADDR_LOOPBACK) : htonl(INADDR_ANY);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error(std::string("ScrapeServer: bind/listen: ") +
                             std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }
  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
}

void ScrapeServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks the accept() call (EINVAL on Linux) without
  // releasing the fd number; close only after the join so the accept
  // thread can never race a recycled descriptor.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void ScrapeServer::accept_loop() {
  const int listen_fd = listen_fd_;  // stable copy; stop() joins before close
  while (running()) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (!running()) break;
      if (errno == EINTR) continue;
      break;  // listening socket is gone; nothing to recover
    }
    serve_connection(fd);
    ::close(fd);
  }
}

void ScrapeServer::serve_connection(int fd) {
  set_io_timeout(fd, config_.io_timeout_s);

  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout, error or clean close
    request.append(buf, static_cast<std::size_t>(n));
  }
  const std::size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // no complete request line
  requests_.fetch_add(1, std::memory_order_relaxed);

  // Request line: METHOD SP PATH SP VERSION
  const std::string line = request.substr(0, line_end);
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    send_all(fd, build_response(400, "text/plain", "bad request line\n"));
    return;
  }
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (const std::size_t q = path.find('?'); q != std::string::npos) {
    path.resize(q);  // query strings are accepted and ignored
  }

  if (method != "GET") {
    send_all(fd,
             build_response(405, "text/plain", "GET only on this port\n"));
    return;
  }
  const auto it = routes_.find(path);
  if (it == routes_.end()) {
    std::string body = "no route " + path + "; try:\n";
    for (const auto& [p, route] : routes_) body += "  " + p + "\n";
    send_all(fd, build_response(404, "text/plain", body));
    return;
  }
  try {
    const std::string body = it->second.handler();
    send_all(fd, build_response(200, it->second.content_type, body));
  } catch (const std::exception& e) {
    send_all(fd, build_response(500, "text/plain",
                                std::string("handler failed: ") + e.what() +
                                    "\n"));
  }
}

}  // namespace scwc::obs
