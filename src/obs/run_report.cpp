#include "obs/run_report.hpp"

#include <chrono>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <iostream>

#include "obs/export.hpp"

#ifndef SCWC_GIT_DESCRIBE
#define SCWC_GIT_DESCRIBE "unknown"
#endif

namespace scwc::obs {

namespace {

constexpr std::string_view kSchema = "scwc.run_report/v1";

std::string iso8601_utc_now() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t t = std::chrono::system_clock::to_time_t(now);
  std::tm tm{};
  gmtime_r(&t, &tm);
  char buf[32];
  std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

std::string check_span_node(const Json& node) {
  if (!node.is_object()) return "span node is not an object";
  for (const char* key : {"name", "calls", "total_s", "self_s", "children"}) {
    if (!node.contains(key)) {
      return std::string("span node missing '") + key + "'";
    }
  }
  if (!node.at("name").is_string()) return "span 'name' is not a string";
  if (!node.at("calls").is_number()) return "span 'calls' is not a number";
  if (!node.at("total_s").is_number()) return "span 'total_s' is not a number";
  if (!node.at("self_s").is_number()) return "span 'self_s' is not a number";
  if (!node.at("children").is_array()) return "span 'children' is not an array";
  for (const Json& child : node.at("children").as_array()) {
    const std::string err = check_span_node(child);
    if (!err.empty()) return err;
  }
  return {};
}

}  // namespace

std::string build_git_describe() { return SCWC_GIT_DESCRIBE; }

std::string build_compiler() {
#if defined(__clang__)
  return std::string("clang ") + __VERSION__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

Json run_report_json(const RunReport& report, const MetricsSnapshot& metrics,
                     const SpanStats& spans) {
  Json::Object build;
  build.emplace("git_describe", Json(build_git_describe()));
  build.emplace("compiler", Json(build_compiler()));

  Json::Object config;
  for (const auto& [key, value] : report.config) {
    config.emplace(key, Json(value));
  }

  Json::Object doc;
  doc.emplace("schema", Json(std::string(kSchema)));
  doc.emplace("run_id", Json(report.run_id));
  doc.emplace("title", Json(report.title));
  doc.emplace("profile", Json(report.profile));
  doc.emplace("written_at", Json(iso8601_utc_now()));
  doc.emplace("build", Json(std::move(build)));
  doc.emplace("config", Json(std::move(config)));
  doc.emplace("wall_seconds", Json(report.wall_seconds));
  doc.emplace("metrics", metrics_to_json(metrics));
  doc.emplace("spans", span_tree_to_json(spans));
  return Json(std::move(doc));
}

std::string validate_run_report_json(const Json& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  for (const char* key :
       {"schema", "run_id", "title", "profile", "written_at", "build",
        "config", "wall_seconds", "metrics", "spans"}) {
    if (!doc.contains(key)) {
      return std::string("missing top-level key '") + key + "'";
    }
  }
  if (!doc.at("schema").is_string() ||
      doc.at("schema").as_string() != kSchema) {
    return "bad 'schema' (expected " + std::string(kSchema) + ")";
  }
  for (const char* key : {"run_id", "title", "profile", "written_at"}) {
    if (!doc.at(key).is_string()) {
      return std::string("'") + key + "' is not a string";
    }
  }
  if (doc.at("run_id").as_string().empty()) return "'run_id' is empty";
  if (!doc.at("wall_seconds").is_number() ||
      doc.at("wall_seconds").as_number() < 0.0) {
    return "'wall_seconds' is not a non-negative number";
  }
  const Json& build = doc.at("build");
  if (!build.is_object() || !build.contains("git_describe") ||
      !build.at("git_describe").is_string() || !build.contains("compiler")) {
    return "'build' must be an object with git_describe and compiler";
  }
  if (!doc.at("config").is_object()) return "'config' is not an object";
  const Json& metrics = doc.at("metrics");
  if (!metrics.is_object()) return "'metrics' is not an object";
  for (const char* key : {"counters", "gauges", "histograms"}) {
    if (!metrics.contains(key) || !metrics.at(key).is_object()) {
      return std::string("metrics.") + key + " is not an object";
    }
  }
  for (const auto& [name, value] : metrics.at("counters").as_object()) {
    if (!value.is_number()) return "counter '" + name + "' is not a number";
  }
  for (const auto& [name, value] : metrics.at("gauges").as_object()) {
    if (!value.is_number() && !value.is_null()) {
      return "gauge '" + name + "' is not a number";
    }
  }
  for (const auto& [name, value] : metrics.at("histograms").as_object()) {
    if (!value.is_object() || !value.contains("count") ||
        !value.contains("sum") || !value.contains("p50") ||
        !value.contains("p90") || !value.contains("p99") ||
        !value.contains("buckets") || !value.at("buckets").is_array()) {
      return "histogram '" + name + "' is malformed";
    }
  }
  if (!doc.at("spans").is_array()) return "'spans' is not an array";
  for (const Json& span : doc.at("spans").as_array()) {
    const std::string err = check_span_node(span);
    if (!err.empty()) return err;
  }
  return {};
}

std::filesystem::path write_run_report(const RunReport& report) {
  if (!enabled()) return {};
  const MetricsSnapshot metrics = MetricsRegistry::global().snapshot();
  const SpanStats spans = span_tree_snapshot();
  const Json doc = run_report_json(report, metrics, spans);

  // scwc_obs sits below scwc_common, so common/env.hpp is off limits here.
  const char* out_dir = std::getenv("SCWC_OBS_OUT");  // scwc-lint: allow(no-raw-getenv)
  std::filesystem::path dir(out_dir != nullptr && *out_dir != '\0' ? out_dir
                                                                   : ".");
  const std::filesystem::path path =
      dir / ("scwc_run_" + report.run_id + ".json");
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);  // best-effort
  std::ofstream os(path, std::ios::trunc);
  if (!os.is_open()) {
    std::cerr << "[scwc:obs] cannot write RunReport to " << path.string()
              << " — set SCWC_OBS_OUT to a writable directory\n";
    return {};
  }
  doc.write(os, /*indent=*/2);
  os << '\n';
  if (!os) {
    std::cerr << "[scwc:obs] short write on RunReport " << path.string()
              << '\n';
    return {};
  }
  return path;
}

}  // namespace scwc::obs
