#include "obs/request_trace.hpp"

#include <algorithm>
#include <cmath>

namespace scwc::obs {

namespace {

// SplitMix64 finaliser. Reimplemented here because obs sits below
// scwc_common and cannot include common/rng.hpp; the constants are the
// standard Stafford mix13 set, same as common's SplitMix64.
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t sample_threshold(double rate) noexcept {
  if (!(rate > 0.0)) return 0;  // also catches NaN
  if (rate >= 1.0) return ~0ULL;
  // rate · 2^64, computed in long double to keep 1e-4-ish rates exact
  // enough; the verdict is mix(seed, id) < threshold.
  const long double scaled =
      static_cast<long double>(rate) * 18446744073709551616.0L;
  return static_cast<std::uint64_t>(scaled);
}

RequestTracerConfig normalize(RequestTracerConfig config) noexcept {
  if (config.capacity == 0) config.capacity = 1;
  return config;
}

}  // namespace

RequestTracer::RequestTracer(RequestTracerConfig config)
    : config_(normalize(config)),
      threshold_(sample_threshold(config.sample_rate)),
      epoch_(Clock::now()) {}

bool RequestTracer::sampled(std::uint64_t trace_id) const noexcept {
  if (threshold_ == 0) return false;
  if (threshold_ == ~0ULL) return true;
  return mix64(config_.seed ^ mix64(trace_id)) < threshold_;
}

void RequestTracer::record(RequestTraceRecord&& rec) {
  const scwc::LockGuard lock(mutex_);
  if (records_.size() >= config_.capacity) {
    records_.pop_front();
    dropped_.fetch_add(1, std::memory_order_relaxed);
  }
  records_.push_back(std::move(rec));
}

std::vector<RequestTraceRecord> RequestTracer::drain() {
  const scwc::LockGuard lock(mutex_);
  std::vector<RequestTraceRecord> out(
      std::make_move_iterator(records_.begin()),
      std::make_move_iterator(records_.end()));
  records_.clear();
  return out;
}

void RequestTracer::reset() {
  const scwc::LockGuard lock(mutex_);
  records_.clear();
  dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace scwc::obs
