// Chrome trace-event ("Trace Event Format") exporter.
//
// Turns sampled RequestTraceRecords plus the aggregated span tree into a
// JSON document loadable by chrome://tracing and Perfetto: complete "X"
// events with pid/tid/ts/dur in microseconds. Layout convention:
//   pid 1  — request lanes, one tid per trace id; each request renders
//            as a parent "request" slice with its phases nested inside,
//            laid out back-to-back (admission → queue → batch wait →
//            transform → predict) from the request's submit time;
//   pid 2  — the process-wide span tree, rendered once on tid 1 with a
//            synthetic sequential timeline (span aggregates have no real
//            start times — only durations nest meaningfully).
//
// A structural validator ships alongside so tools and tests can prove an
// emitted file is loadable without a browser in the loop.
#pragma once

#include <span>
#include <string>

#include "obs/json.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"

namespace scwc::obs {

/// Builds the full trace document: {"displayTimeUnit": "ms",
/// "traceEvents": [...]} with process-name metadata, one slice group per
/// record and the span tree. Deterministic for fixed inputs. A non-empty
/// `meta` object is attached as a top-level "scwcMeta" key — extra
/// top-level keys are legal trace-event JSON (the validator ignores them);
/// scwc_tracemerge uses it to carry tracer epochs and clock offsets.
[[nodiscard]] Json chrome_trace_json(std::span<const RequestTraceRecord> records,
                                     const SpanStats& span_root,
                                     Json::Object meta = {});

/// Structural self-check: "" when `doc` is a well-formed trace-event
/// document (object with a traceEvents array; every event has string
/// name/ph and numeric pid/tid; "X" events additionally carry numeric
/// non-negative ts and dur). Anything else returns a one-line violation.
[[nodiscard]] std::string validate_chrome_trace_json(const Json& doc);

/// chrome_trace_json + write to `path` (pretty-printed). Returns false
/// when the file cannot be opened/written; never throws.
bool write_chrome_trace_file(const std::string& path,
                             std::span<const RequestTraceRecord> records,
                             const SpanStats& span_root,
                             Json::Object meta = {});

}  // namespace scwc::obs
