// Request-scoped tracing for the serving stack (DESIGN.md §7).
//
// TraceSpan (trace.hpp) aggregates by call site — it answers "where does
// the process spend time". RequestTracer answers the orthogonal question
// "where did THIS request spend time": every submitted window gets a
// monotonically-derived trace id, the serve layer stamps phase boundaries
// (admission → queue → batch wait → transform → predict), and a seeded
// head-sampler decides — deterministically, from (seed, trace id) alone —
// which requests keep a full RequestTraceRecord. Determinism matters for
// the same reason it does in chaos.hpp: a replay with the same seed and
// submission order samples the same requests, so disarmed runs are
// byte-comparable.
//
// Records live in a bounded ring (oldest dropped, drop count exposed) and
// are drained once at end of run for Chrome-trace export; the tracer is
// not a streaming sink.
//
// This header also owns `seconds_between`, the one blessed way for
// src/serve/ to turn a steady_clock interval into seconds — the
// `no-raw-chrono-timing` lint rule forbids inlining the chrono arithmetic
// there so all request timing flows through the obs layer.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace scwc::obs {

/// Interval between two steady-clock stamps, in seconds. Negative
/// intervals (caller swapped the arguments, or cross-thread stamp skew)
/// clamp to 0 so phase durations are always well-formed.
[[nodiscard]] inline double seconds_between(
    std::chrono::steady_clock::time_point from,
    std::chrono::steady_clock::time_point to) noexcept {
  const double s = std::chrono::duration<double>(to - from).count();
  return s > 0.0 ? s : 0.0;
}

/// Unclamped variant for genuinely signed intervals (deadline slack:
/// negative = past the deadline).
[[nodiscard]] inline double signed_seconds_between(
    std::chrono::steady_clock::time_point from,
    std::chrono::steady_clock::time_point to) noexcept {
  return std::chrono::duration<double>(to - from).count();
}

/// A steady-clock stamp as nanoseconds since the clock's (process-wide)
/// epoch — the blessed chrono path for wire timestamps: the clock-offset
/// handshake ships these in pong frames, and chrome-trace files record
/// their tracer epoch this way so scwc_tracemerge can align processes.
[[nodiscard]] inline std::uint64_t steady_ns(
    std::chrono::steady_clock::time_point t =
        std::chrono::steady_clock::now()) noexcept {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
      t.time_since_epoch());
  return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
}

/// Per-request phase-timing breakdown, all in seconds. The first five
/// phases are stamped by the in-process serve stack; route/wire_send/
/// wire_recv stay 0 there and are filled by the ShardRouter when the
/// request crossed SCWCWIRE (DESIGN.md §13).
struct RequestPhases {
  double admission_s = 0.0;   ///< submit entry → admission verdict/enqueue
  double route_s = 0.0;       ///< router only: ring lookup → shard chosen
  double wire_send_s = 0.0;   ///< router only: frame encode + send_all
  double queue_s = 0.0;       ///< enqueue → batch cut
  double batch_wait_s = 0.0;  ///< batch cut → executor pickup
  double transform_s = 0.0;   ///< batch feature transform (batch-level time)
  double predict_s = 0.0;     ///< batch model predict (batch-level time)
  double wire_recv_s = 0.0;   ///< router only: residual wire/verdict return
  double total_s = 0.0;       ///< submit entry → promise fulfilled
};

/// One sampled request, as recorded at verdict time.
struct RequestTraceRecord {
  std::uint64_t trace_id = 0;
  std::int64_t job_id = -1;        ///< -1 when the caller supplied none
  double start_s = 0.0;            ///< submit time, seconds since tracer epoch
  RequestPhases phases;
  std::string outcome;             ///< "answer" | "abstain:…" | "shed:…"
  std::string model_version;       ///< bundle that answered ("" for sheds)
  std::size_t batch_size = 0;
  int degrade_level = 0;
};

struct RequestTracerConfig {
  /// Head-sampling rate in [0, 1]; 0 disables record keeping entirely
  /// (ids are still assigned — they are cheap and serve results carry
  /// them regardless).
  double sample_rate = 0.0;
  std::uint64_t seed = 0x5eed;
  std::size_t capacity = 8192;  ///< record ring size; oldest dropped beyond
};

class RequestTracer {
 public:
  using Clock = std::chrono::steady_clock;

  explicit RequestTracer(RequestTracerConfig config = {});

  /// Next monotone trace id (never 0; 0 means "untraced").
  [[nodiscard]] std::uint64_t begin_trace() noexcept {
    return next_id_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Deterministic head-sampling verdict: depends only on (seed, id).
  [[nodiscard]] bool sampled(std::uint64_t trace_id) const noexcept;

  /// Keeps a finished record (caller checked sampled()); drops the oldest
  /// when the ring is full.
  void record(RequestTraceRecord&& rec);

  /// Removes and returns all held records, oldest first.
  [[nodiscard]] std::vector<RequestTraceRecord> drain();

  /// Records evicted by the capacity bound since construction/reset.
  [[nodiscard]] std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] Clock::time_point epoch() const noexcept { return epoch_; }
  /// Seconds from the tracer epoch to `t` (for RequestTraceRecord.start_s).
  [[nodiscard]] double since_epoch(Clock::time_point t) const noexcept {
    return seconds_between(epoch_, t);
  }

  [[nodiscard]] const RequestTracerConfig& config() const noexcept {
    return config_;
  }

  /// Forgets records and the drop count; ids keep counting up.
  void reset();

 private:
  const RequestTracerConfig config_;  ///< normalized: capacity >= 1
  const std::uint64_t threshold_;  ///< sample iff mix(seed, id) < threshold
  const Clock::time_point epoch_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<std::uint64_t> dropped_{0};
  mutable scwc::Mutex mutex_{"obs.request_trace"};
  std::deque<RequestTraceRecord> records_ SCWC_GUARDED_BY(mutex_);
};

}  // namespace scwc::obs
