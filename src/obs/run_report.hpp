// Per-run report artifacts.
//
// Every RunReport-emitting bench writes one JSON file per run — the run's
// configuration, the full metrics snapshot, the hierarchical span tree and
// build provenance — next to its stdout result tables, so a result is
// never separated from the telemetry that produced it (schema:
// "scwc.run_report/v1", DESIGN.md §7).
//
// Environment:
//   SCWC_OBS=off      disables observability entirely — no report written
//   SCWC_OBS_OUT=DIR  directory for report files (default: current dir)
#pragma once

#include <filesystem>
#include <map>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scwc::obs {

/// Identity + configuration of one bench/example run. Metrics and spans
/// are captured from the global registry/tree at write time.
struct RunReport {
  std::string run_id;  ///< file-name-safe id, e.g. "xgboost_random1"
  std::string title;   ///< one-line human description
  std::string profile; ///< active scale profile name ("tiny"/"small"/"full")
  std::map<std::string, std::string> config;  ///< free-form run parameters
  double wall_seconds = 0.0;  ///< end-to-end wall time measured by the run
};

/// Compiler/VCS provenance baked in at configure time (git describe).
[[nodiscard]] std::string build_git_describe();
[[nodiscard]] std::string build_compiler();

/// Assembles the full report document from explicit parts (pure; tests use
/// this directly).
[[nodiscard]] Json run_report_json(const RunReport& report,
                                   const MetricsSnapshot& metrics,
                                   const SpanStats& spans);

/// Validates a parsed report against the v1 schema. Returns an empty
/// string when valid, else a description of the first violation.
[[nodiscard]] std::string validate_run_report_json(const Json& doc);

/// Captures the global metrics snapshot + span tree and writes the report
/// to `<SCWC_OBS_OUT or .>/scwc_run_<run_id>.json`. Returns the path
/// written; empty when observability is disabled or the write failed (the
/// failure is reported on stderr — a missing report must not fail a run).
std::filesystem::path write_run_report(const RunReport& report);

}  // namespace scwc::obs
