#include "obs/rolling.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace scwc::obs {

namespace {

/// Absolute slot index owning `now` (0 at the epoch, monotone after).
std::int64_t slot_index(std::chrono::steady_clock::time_point epoch,
                        std::chrono::steady_clock::time_point now,
                        double slot_width_s) {
  const double elapsed_s =
      std::chrono::duration<double>(now - epoch).count();
  if (elapsed_s <= 0.0) return 0;
  return static_cast<std::int64_t>(elapsed_s / slot_width_s);
}

void validate_config(const RollingConfig& config) {
  if (!(config.window_s > 0.0)) {
    throw std::invalid_argument("Rolling: window_s must be positive");
  }
  if (config.slots == 0) {
    throw std::invalid_argument("Rolling: need at least one slot");
  }
}

}  // namespace

double bucket_quantile(const std::vector<double>& bounds,
                       const std::vector<std::uint64_t>& counts, double q) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0 || bounds.empty()) return 0.0;

  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double cumulative = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts[i]);
    if (next >= target && counts[i] > 0) {
      if (i >= bounds.size()) return bounds.back();  // overflow: clamp
      const double lo = i == 0 ? 0.0 : bounds[i - 1];
      const double hi = bounds[i];
      const double within =
          (target - cumulative) / static_cast<double>(counts[i]);
      return lo + std::clamp(within, 0.0, 1.0) * (hi - lo);
    }
    cumulative = next;
  }
  return bounds.back();
}

// ---------------------------------------------------------------------------
// RollingCounter

RollingCounter::RollingCounter(RollingConfig config)
    : config_(config),
      slot_width_s_(config.window_s / static_cast<double>(config.slots)),
      epoch_(Clock::now()),
      // slots + 1 ring entries: the partial current slot plus `slots`
      // full ones, so a merge always covers at least window_s.
      slots_(config.slots + 1, 0),
      slot_ids_(config.slots + 1, -1) {
  validate_config(config);
}

void RollingCounter::inc(std::uint64_t n) { inc(n, Clock::now()); }

void RollingCounter::inc(std::uint64_t n, Clock::time_point now) {
  const scwc::LockGuard lock(mutex_);
  const std::int64_t id = slot_index(epoch_, now, slot_width_s_);
  const auto pos = static_cast<std::size_t>(
      id % static_cast<std::int64_t>(slots_.size()));
  if (slot_ids_[pos] != id) {  // stale ring entry: recycle
    slots_[pos] = 0;
    slot_ids_[pos] = id;
  }
  slots_[pos] += n;
}

std::uint64_t RollingCounter::value() const { return value(Clock::now()); }

std::uint64_t RollingCounter::value(Clock::time_point now) const {
  const scwc::LockGuard lock(mutex_);
  const std::int64_t id = slot_index(epoch_, now, slot_width_s_);
  const std::int64_t oldest = id - static_cast<std::int64_t>(config_.slots);
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slot_ids_[i] >= oldest && slot_ids_[i] <= id) total += slots_[i];
  }
  return total;
}

void RollingCounter::reset() {
  const scwc::LockGuard lock(mutex_);
  std::fill(slots_.begin(), slots_.end(), 0);
  std::fill(slot_ids_.begin(), slot_ids_.end(), -1);
}

// ---------------------------------------------------------------------------
// RollingHistogram

RollingHistogram::RollingHistogram(std::vector<double> upper_bounds,
                                   RollingConfig config)
    : config_(config),
      slot_width_s_(config.window_s / static_cast<double>(config.slots)),
      bounds_(std::move(upper_bounds)),
      epoch_(Clock::now()),
      slots_(config.slots + 1) {
  validate_config(config);
  if (bounds_.empty()) {
    throw std::invalid_argument(
        "RollingHistogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "RollingHistogram: bounds must be strictly increasing");
  }
  for (Slot& slot : slots_) slot.buckets.assign(bounds_.size() + 1, 0);
}

void RollingHistogram::observe(double v) { observe(v, Clock::now()); }

void RollingHistogram::observe(double v, Clock::time_point now) {
  if (std::isnan(v) || v < 0.0) return;  // same contract as Histogram
  const scwc::LockGuard lock(mutex_);
  const std::int64_t id = slot_index(epoch_, now, slot_width_s_);
  const auto pos = static_cast<std::size_t>(
      id % static_cast<std::int64_t>(slots_.size()));
  Slot& slot = slots_[pos];
  if (slot.id != id) {  // stale ring entry: recycle
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
    slot.id = id;
  }
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  slot.buckets[static_cast<std::size_t>(it - bounds_.begin())] += 1;
  slot.count += 1;
  slot.sum += v;
}

RollingHistogramSnapshot RollingHistogram::snapshot() const {
  return snapshot(Clock::now());
}

RollingHistogramSnapshot RollingHistogram::snapshot(
    Clock::time_point now) const {
  RollingHistogramSnapshot out;
  out.window_s = config_.window_s;
  out.bounds = bounds_;
  out.buckets.assign(bounds_.size() + 1, 0);
  {
    const scwc::LockGuard lock(mutex_);
    const std::int64_t id = slot_index(epoch_, now, slot_width_s_);
    const std::int64_t oldest = id - static_cast<std::int64_t>(config_.slots);
    for (const Slot& slot : slots_) {
      if (slot.id < oldest || slot.id > id) continue;  // expired or empty
      for (std::size_t b = 0; b < out.buckets.size(); ++b) {
        out.buckets[b] += slot.buckets[b];
      }
      out.count += slot.count;
      out.sum += slot.sum;
    }
  }
  out.p50 = bucket_quantile(out.bounds, out.buckets, 0.50);
  out.p90 = bucket_quantile(out.bounds, out.buckets, 0.90);
  out.p99 = bucket_quantile(out.bounds, out.buckets, 0.99);
  out.p999 = bucket_quantile(out.bounds, out.buckets, 0.999);
  return out;
}

void RollingHistogram::reset() {
  const scwc::LockGuard lock(mutex_);
  for (Slot& slot : slots_) {
    std::fill(slot.buckets.begin(), slot.buckets.end(), 0);
    slot.count = 0;
    slot.sum = 0.0;
    slot.id = -1;
  }
}

}  // namespace scwc::obs
