#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace scwc::obs {

namespace {

[[noreturn]] void kind_error(const char* want, Json::Kind got) {
  throw JsonError(std::string("json: expected ") + want + ", value is kind " +
                  std::to_string(static_cast<int>(got)));
}

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double d) {
  if (!std::isfinite(d)) {
    os << "null";
    return;
  }
  // Integral values print without a trailing ".0" (counters, counts);
  // everything else uses shortest round-trip formatting.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    os << static_cast<long long>(d);
    return;
  }
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), d);
  os.write(buf, ptr - buf);
}

/// Recursive-descent RFC 8259 parser over a string_view.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[noreturn]] void fail(const std::string& what) const {
    throw JsonError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      fail(std::string("expected '") + c + "', found '" + peek() + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Json parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object(depth);
      case '[':
        return parse_array(depth);
      case '"':
        return Json(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return Json(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return Json(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  Json parse_object(int depth) {
    expect('{');
    Json::Object obj;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.emplace(std::move(key), parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return Json(std::move(obj));
      }
      fail("expected ',' or '}' in object");
    }
  }

  Json parse_array(int depth) {
    expect('[');
    Json::Array arr;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(parse_value(depth + 1));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return Json(std::move(arr));
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"':
            out += '"';
            break;
          case '\\':
            out += '\\';
            break;
          case '/':
            out += '/';
            break;
          case 'b':
            out += '\b';
            break;
          case 'f':
            out += '\f';
            break;
          case 'n':
            out += '\n';
            break;
          case 'r':
            out += '\r';
            break;
          case 't':
            out += '\t';
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                fail("bad hex digit in \\u escape");
              }
            }
            // UTF-8 encode the BMP code point (surrogate pairs in metric
            // names do not occur; reject them rather than mis-decode).
            if (code >= 0xD800 && code <= 0xDFFF) {
              fail("surrogate pairs are not supported");
            }
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      } else {
        out += c;
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    double value = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    if (ec != std::errc{} || ptr != text_.data() + pos_ || pos_ == start) {
      pos_ = start;
      fail("malformed number");
    }
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool", kind_);
  return bool_;
}

double Json::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number", kind_);
  return number_;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("string", kind_);
  return string_;
}

const Json::Array& Json::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  return array_;
}

const Json::Object& Json::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_;
}

bool Json::contains(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_.find(std::string(key)) != object_.end();
}

const Json& Json::at(std::string_view key) const {
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  const auto it = object_.find(std::string(key));
  if (it == object_.end()) {
    throw JsonError("json: missing key '" + std::string(key) + "'");
  }
  return it->second;
}

Json& Json::operator[](const std::string& key) {
  if (kind_ == Kind::kNull) kind_ = Kind::kObject;
  if (kind_ != Kind::kObject) kind_error("object", kind_);
  return object_[key];
}

void Json::push_back(Json value) {
  if (kind_ == Kind::kNull) kind_ = Kind::kArray;
  if (kind_ != Kind::kArray) kind_error("array", kind_);
  array_.push_back(std::move(value));
}

void Json::write_impl(std::ostream& os, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    os << '\n';
    for (int i = 0; i < indent * d; ++i) os << ' ';
  };
  switch (kind_) {
    case Kind::kNull:
      os << "null";
      break;
    case Kind::kBool:
      os << (bool_ ? "true" : "false");
      break;
    case Kind::kNumber:
      write_number(os, number_);
      break;
    case Kind::kString:
      write_escaped(os, string_);
      break;
    case Kind::kArray: {
      if (array_.empty()) {
        os << "[]";
        break;
      }
      os << '[';
      bool first = true;
      for (const Json& v : array_) {
        if (!first) os << ',';
        first = false;
        newline_pad(depth + 1);
        v.write_impl(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << ']';
      break;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        os << "{}";
        break;
      }
      os << '{';
      bool first = true;
      for (const auto& [key, v] : object_) {
        if (!first) os << ',';
        first = false;
        newline_pad(depth + 1);
        write_escaped(os, key);
        os << ':';
        if (indent >= 0) os << ' ';
        v.write_impl(os, indent, depth + 1);
      }
      newline_pad(depth);
      os << '}';
      break;
    }
  }
}

void Json::write(std::ostream& os, int indent) const {
  write_impl(os, indent, 0);
}

std::string Json::dump(int indent) const {
  std::ostringstream os;
  write(os, indent);
  return os.str();
}

Json Json::parse(std::string_view text) {
  Parser parser(text);
  return parser.parse_document();
}

}  // namespace scwc::obs
