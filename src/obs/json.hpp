// Minimal JSON document model, writer and parser.
//
// RunReports and the metrics exporter need structured, machine-readable
// output, and the bench-smoke test needs to validate what was emitted —
// without external dependencies. This module provides both sides: a small
// value type with a strict RFC 8259 parser (used by the validator and the
// golden-output tests) and a writer whose number formatting round-trips
// doubles via shortest-form std::to_chars.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace scwc::obs {

/// Thrown by Json::parse on malformed input (with byte-offset context).
class JsonError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// One JSON value: null, bool, number (double), string, array or object.
/// Object keys stay sorted (std::map) so output is deterministic.
class Json {
 public:
  using Array = std::vector<Json>;
  using Object = std::map<std::string, Json>;

  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() noexcept : kind_(Kind::kNull) {}
  Json(std::nullptr_t) noexcept : kind_(Kind::kNull) {}  // NOLINT(runtime/explicit)
  Json(bool b) noexcept : kind_(Kind::kBool), bool_(b) {}  // NOLINT
  Json(double d) noexcept : kind_(Kind::kNumber), number_(d) {}  // NOLINT
  Json(int i) noexcept : Json(static_cast<double>(i)) {}  // NOLINT
  Json(std::uint64_t u) noexcept  // NOLINT(runtime/explicit)
      : Json(static_cast<double>(u)) {}
  Json(const char* s) : kind_(Kind::kString), string_(s) {}  // NOLINT
  Json(std::string s) noexcept  // NOLINT(runtime/explicit)
      : kind_(Kind::kString), string_(std::move(s)) {}
  Json(Array a) noexcept  // NOLINT(runtime/explicit)
      : kind_(Kind::kArray), array_(std::move(a)) {}
  Json(Object o) noexcept  // NOLINT(runtime/explicit)
      : kind_(Kind::kObject), object_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept {
    return kind_ == Kind::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return kind_ == Kind::kString;
  }
  [[nodiscard]] bool is_array() const noexcept {
    return kind_ == Kind::kArray;
  }
  [[nodiscard]] bool is_object() const noexcept {
    return kind_ == Kind::kObject;
  }

  /// Typed accessors; throw JsonError on kind mismatch.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_number() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const Array& as_array() const;
  [[nodiscard]] const Object& as_object() const;

  /// Object convenience: member presence / lookup (throws when not an
  /// object or the key is absent).
  [[nodiscard]] bool contains(std::string_view key) const;
  [[nodiscard]] const Json& at(std::string_view key) const;

  /// Mutable object/array builders.
  Json& operator[](const std::string& key);  ///< becomes an object if null
  void push_back(Json value);                ///< becomes an array if null

  /// Serialises the value. indent < 0 → compact single line; indent ≥ 0 →
  /// pretty-printed with that many spaces per level. Non-finite numbers
  /// are emitted as null (JSON has no Inf/NaN).
  void write(std::ostream& os, int indent = -1) const;
  [[nodiscard]] std::string dump(int indent = -1) const;

  /// Strict parser; throws JsonError with byte-offset context. The whole
  /// input must be one JSON value (trailing garbage is an error).
  static Json parse(std::string_view text);

 private:
  void write_impl(std::ostream& os, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace scwc::obs
