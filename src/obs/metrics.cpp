#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace scwc::obs {

namespace {

bool read_enabled_from_env() {
  // scwc_obs sits BELOW scwc_common (so ThreadPool/log can be instrumented
  // without a cycle) and therefore cannot use common/env.hpp.
  const char* v = std::getenv("SCWC_OBS");  // scwc-lint: allow(no-raw-getenv)
  if (v == nullptr) return true;
  const std::string_view s(v);
  return !(s == "off" || s == "0" || s == "false");
}

std::atomic<bool>& enabled_flag() noexcept {
  static std::atomic<bool> flag{read_enabled_from_env()};
  return flag;
}

}  // namespace

bool enabled() noexcept {
  return enabled_flag().load(std::memory_order_relaxed);
}

void set_enabled(bool on) noexcept {
  enabled_flag().store(on, std::memory_order_relaxed);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1) {
  if (bounds_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument(
        "Histogram: bounds must be strictly increasing");
  }
}

void Histogram::observe(double v) noexcept {
  if (std::isnan(v) || v < 0.0) return;  // silent drop, see header
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::quantile(double q) const {
  return bucket_quantile(bounds_, bucket_counts(), q);
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

std::uint64_t counter_value(const MetricsSnapshot& snapshot,
                            std::string_view name) noexcept {
  for (const auto& [n, v] : snapshot.counters) {
    if (n == name) return v;
  }
  return 0;
}

double gauge_value(const MetricsSnapshot& snapshot,
                   std::string_view name) noexcept {
  for (const auto& [n, v] : snapshot.gauges) {
    if (n == name) return v;
  }
  return 0.0;
}

CounterHandle MetricsRegistry::counter(std::string_view name) {
  if (!enabled()) return CounterHandle{};
  const scwc::LockGuard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return CounterHandle{it->second.get()};
}

GaugeHandle MetricsRegistry::gauge(std::string_view name) {
  if (!enabled()) return GaugeHandle{};
  const scwc::LockGuard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return GaugeHandle{it->second.get()};
}

HistogramHandle MetricsRegistry::histogram(std::string_view name,
                                           std::vector<double> upper_bounds) {
  if (!enabled()) return HistogramHandle{};
  const scwc::LockGuard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(upper_bounds)))
             .first;
  }
  return HistogramHandle{it->second.get()};
}

RollingHistogramHandle MetricsRegistry::rolling_histogram(
    std::string_view name, std::vector<double> upper_bounds,
    RollingConfig config) {
  if (!enabled()) return RollingHistogramHandle{};
  const scwc::LockGuard lock(mutex_);
  auto it = rolling_.find(name);
  if (it == rolling_.end()) {
    it = rolling_
             .emplace(std::string(name),
                      std::make_unique<RollingHistogram>(
                          std::move(upper_bounds), config))
             .first;
  }
  return RollingHistogramHandle{it->second.get()};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const scwc::LockGuard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    out.counters.emplace_back(name, c->value());
  }
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    out.gauges.emplace_back(name, g->value());
  }
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.count = h->count();
    hs.sum = h->sum();
    hs.p50 = h->quantile(0.50);
    hs.p90 = h->quantile(0.90);
    hs.p99 = h->quantile(0.99);
    hs.p999 = h->quantile(0.999);
    out.histograms.push_back(std::move(hs));
  }
  out.rolling.reserve(rolling_.size());
  for (const auto& [name, r] : rolling_) {
    RollingHistogramSnapshot rs = r->snapshot();
    rs.name = name;
    out.rolling.push_back(std::move(rs));
  }
  return out;
}

void MetricsRegistry::reset() {
  const scwc::LockGuard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
  for (auto& [name, r] : rolling_) r->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

std::vector<double> MetricsRegistry::default_seconds_buckets() {
  std::vector<double> b;
  for (double v = 1e-6; v < 200.0; v *= 4.0) b.push_back(v);
  return b;  // 1 µs, 4 µs, …, ~107 s
}

std::vector<double> MetricsRegistry::default_bytes_buckets() {
  std::vector<double> b;
  for (double v = 64.0; v <= 1024.0 * 1024.0 * 1024.0; v *= 8.0) {
    b.push_back(v);
  }
  return b;  // 64 B, 512 B, …, 1 GiB
}

}  // namespace scwc::obs
