// Serialisers for metrics snapshots and span trees.
//
// Three formats, three consumers: JSON for RunReport artifacts and tests,
// Prometheus text exposition for scrape-style integration (and humans with
// grep), and an indented text tree for terminal output (live_monitor, bench
// footers).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scwc::obs {

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// p50, p90, p99, buckets: [{le, count}, ...]}}}
[[nodiscard]] Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Array of span nodes: [{name, calls, total_s, self_s, children: [...]}].
/// The synthetic root is dropped — only real spans are serialised.
[[nodiscard]] Json span_tree_to_json(const SpanStats& root);

/// Prometheus text exposition format (# TYPE comments, _bucket/_sum/_count
/// histogram series with le labels). Deterministic: series sorted by name.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Indented human-readable tree: one line per span with calls/total/self,
/// children indented beneath their parent.
void render_span_tree(std::ostream& os, const SpanStats& root);

}  // namespace scwc::obs
