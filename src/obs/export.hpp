// Serialisers for metrics snapshots and span trees.
//
// Three formats, three consumers: JSON for RunReport artifacts and tests,
// Prometheus text exposition for scrape-style integration (and humans with
// grep), and an indented text tree for terminal output (live_monitor, bench
// footers).
#pragma once

#include <iosfwd>
#include <string>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scwc::obs {

/// {"counters": {...}, "gauges": {...}, "histograms": {name: {count, sum,
/// p50, p90, p99, p999, buckets: [{le, count}, ...]}}, "rolling": {name:
/// {window_s, count, sum, p50, p90, p99, p999}}}. The "rolling" key is
/// omitted when no rolling histograms are registered, so pre-existing
/// artifacts keep their exact shape.
[[nodiscard]] Json metrics_to_json(const MetricsSnapshot& snapshot);

/// Maps an arbitrary string onto the Prometheus metric-name charset
/// [a-zA-Z_:][a-zA-Z0-9_:]*: illegal characters become '_', an empty or
/// digit-leading result gains a '_' prefix.
[[nodiscard]] std::string sanitize_metric_name(std::string_view name);

/// Escapes a label value per the text exposition format: backslash,
/// double-quote and newline are escaped; other bytes pass through.
[[nodiscard]] std::string sanitize_label_value(std::string_view value);

/// Array of span nodes: [{name, calls, total_s, self_s, children: [...]}].
/// The synthetic root is dropped — only real spans are serialised.
[[nodiscard]] Json span_tree_to_json(const SpanStats& root);

/// Prometheus text exposition format (# TYPE comments, _bucket/_sum/_count
/// histogram series with explicit +Inf le, rolling histograms as summary
/// series with quantile labels). Deterministic: series sorted by name,
/// names/labels sanitized, and an empty snapshot renders byte-identically
/// as the empty string (golden-file tested).
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot);

/// Indented human-readable tree: one line per span with calls/total/self,
/// children indented beneath their parent.
void render_span_tree(std::ostream& os, const SpanStats& root);

}  // namespace scwc::obs
