#include "obs/trace.hpp"

#include <map>
#include <memory>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"

namespace scwc::obs {

namespace {

/// One node of the global aggregation tree. Structure and statistics are
/// both guarded by SpanTree::mu; nodes are node-allocated and never move,
/// so open spans can hold raw pointers across the unlocked timed region.
/// (Interior nodes are reached through those raw pointers, which the
/// static analysis cannot tie to the mutex — only the root is annotated.)
struct SpanNode {
  std::string name;
  SpanNode* parent = nullptr;
  std::uint64_t calls = 0;
  double total_s = 0.0;
  std::map<std::string, std::unique_ptr<SpanNode>, std::less<>> children;
};

/// The global tree and its lock live in one struct so the GUARDED_BY
/// relation is visible to the analysis.
struct SpanTree {
  scwc::Mutex mu{"obs.span_tree"};
  SpanNode root SCWC_GUARDED_BY(mu);
};

SpanTree& tree() noexcept {
  static SpanTree t;
  return t;
}

/// The innermost open span of this thread (nullptr → at the root).
thread_local SpanNode* t_current = nullptr;

void copy_subtree(const SpanNode& node, SpanStats& out) {
  out.name = node.name;
  out.calls = node.calls;
  out.total_s = node.total_s;
  double child_total = 0.0;
  out.children.reserve(node.children.size());
  for (const auto& [name, child] : node.children) {
    SpanStats stats;
    copy_subtree(*child, stats);
    child_total += stats.total_s;
    out.children.push_back(std::move(stats));
  }
  out.self_s = out.total_s > child_total ? out.total_s - child_total : 0.0;
}

}  // namespace

TraceSpan::TraceSpan(std::string_view name) {
  if (!enabled()) return;
  {
    SpanTree& t = tree();
    const scwc::LockGuard lock(t.mu);
    SpanNode* parent = t_current != nullptr ? t_current : &t.root;
    auto it = parent->children.find(name);
    if (it == parent->children.end()) {
      auto node = std::make_unique<SpanNode>();
      node->name = std::string(name);
      node->parent = parent;
      it = parent->children.emplace(std::string(name), std::move(node)).first;
    }
    node_ = it->second.get();
  }
  parent_ = t_current;
  t_current = static_cast<SpanNode*>(node_);
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  t_current = static_cast<SpanNode*>(parent_);
  const scwc::LockGuard lock(tree().mu);
  auto* node = static_cast<SpanNode*>(node_);
  node->calls += 1;
  node->total_s += elapsed;
}

SpanStats span_tree_snapshot() {
  SpanTree& t = tree();
  const scwc::LockGuard lock(t.mu);
  SpanStats out;
  copy_subtree(t.root, out);
  out.self_s = 0.0;  // the synthetic root carries no time of its own
  return out;
}

double total_traced_seconds(const SpanStats& root) noexcept {
  double total = 0.0;
  for (const SpanStats& child : root.children) total += child.total_s;
  return total;
}

void reset_span_tree() {
  SpanTree& t = tree();
  const scwc::LockGuard lock(t.mu);
  // Open spans keep raw pointers into the tree, so resetting while spans
  // are live would dangle them. The harness resets between phases, with no
  // spans open; clearing children of a quiescent tree is then safe.
  t.root.children.clear();
}

}  // namespace scwc::obs
