#include "obs/trace.hpp"

#include <map>
#include <memory>
#include <mutex>

#include "obs/metrics.hpp"

namespace scwc::obs {

namespace {

/// One node of the global aggregation tree. Structure and statistics are
/// both guarded by tree_mutex(); nodes are node-allocated and never move,
/// so open spans can hold raw pointers across the unlocked timed region.
struct SpanNode {
  std::string name;
  SpanNode* parent = nullptr;
  std::uint64_t calls = 0;
  double total_s = 0.0;
  std::map<std::string, std::unique_ptr<SpanNode>, std::less<>> children;
};

std::mutex& tree_mutex() noexcept {
  static std::mutex m;
  return m;
}

SpanNode& tree_root() noexcept {
  static SpanNode root;
  return root;
}

/// The innermost open span of this thread (nullptr → at the root).
thread_local SpanNode* t_current = nullptr;

void copy_subtree(const SpanNode& node, SpanStats& out) {
  out.name = node.name;
  out.calls = node.calls;
  out.total_s = node.total_s;
  double child_total = 0.0;
  out.children.reserve(node.children.size());
  for (const auto& [name, child] : node.children) {
    SpanStats stats;
    copy_subtree(*child, stats);
    child_total += stats.total_s;
    out.children.push_back(std::move(stats));
  }
  out.self_s = out.total_s > child_total ? out.total_s - child_total : 0.0;
}

}  // namespace

TraceSpan::TraceSpan(std::string_view name) {
  if (!enabled()) return;
  {
    const std::lock_guard<std::mutex> lock(tree_mutex());
    SpanNode* parent = t_current != nullptr ? t_current : &tree_root();
    auto it = parent->children.find(name);
    if (it == parent->children.end()) {
      auto node = std::make_unique<SpanNode>();
      node->name = std::string(name);
      node->parent = parent;
      it = parent->children.emplace(std::string(name), std::move(node)).first;
    }
    node_ = it->second.get();
  }
  parent_ = t_current;
  t_current = static_cast<SpanNode*>(node_);
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (node_ == nullptr) return;
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  t_current = static_cast<SpanNode*>(parent_);
  const std::lock_guard<std::mutex> lock(tree_mutex());
  auto* node = static_cast<SpanNode*>(node_);
  node->calls += 1;
  node->total_s += elapsed;
}

SpanStats span_tree_snapshot() {
  const std::lock_guard<std::mutex> lock(tree_mutex());
  SpanStats out;
  copy_subtree(tree_root(), out);
  out.self_s = 0.0;  // the synthetic root carries no time of its own
  return out;
}

double total_traced_seconds(const SpanStats& root) noexcept {
  double total = 0.0;
  for (const SpanStats& child : root.children) total += child.total_s;
  return total;
}

void reset_span_tree() {
  const std::lock_guard<std::mutex> lock(tree_mutex());
  // Open spans keep raw pointers into the tree, so resetting while spans
  // are live would dangle them. The harness resets between phases, with no
  // spans open; clearing children of a quiescent tree is then safe.
  tree_root().children.clear();
}

}  // namespace scwc::obs
