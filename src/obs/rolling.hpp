// Rolling-window metric primitives (DESIGN.md §7).
//
// The fixed-bucket Histogram in metrics.hpp accumulates since process
// start, which is the right shape for run reports but useless for live
// monitoring: a latency spike ten minutes ago pins the cumulative p99
// forever. RollingHistogram layers a time-bucketed slot ring on top of
// the same cumulative-upper-bound bucket grid so snapshots report the
// last `window_s` seconds only. RollingCounter is the scalar analogue
// (events per window).
//
// Mechanics: the window is divided into `slots` sub-windows of width
// window_s / slots. Each observation lands in the slot owning the
// current time; slots older than the window are lazily zeroed on the
// next touch. A snapshot merges the live slots, so it covers between
// window_s and window_s + one slot width of history — coarse by design;
// this is a monitoring primitive, not an accounting one.
//
// Every operation takes the object's mutex (observations are ~100 ns —
// see BM_ObsRollingHistogramObserve); these are not meant for per-sample
// use inside compute kernels, only at request granularity.
//
// All time-touching calls have an explicit `now` overload so tests and
// HealthMonitor replay drive the ring without sleeping.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace scwc::obs {

/// Shared bucket-quantile estimate: linear interpolation inside the
/// owning bucket (first bucket from 0, overflow clamps to the largest
/// finite bound). `counts` has bounds.size() + 1 entries. Returns 0
/// when the histogram is empty. Used by both Histogram and
/// RollingHistogram snapshots.
[[nodiscard]] double bucket_quantile(const std::vector<double>& bounds,
                                     const std::vector<std::uint64_t>& counts,
                                     double q);

struct RollingConfig {
  double window_s = 30.0;  ///< span a snapshot reports over
  std::size_t slots = 10;  ///< ring granularity (window_s / slots per slot)
};

/// Point-in-time merge of a RollingHistogram's live slots.
struct RollingHistogramSnapshot {
  std::string name;
  double window_s = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1, last = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
};

/// Count of events inside the trailing window.
class RollingCounter {
 public:
  using Clock = std::chrono::steady_clock;

  explicit RollingCounter(RollingConfig config = {});

  void inc(std::uint64_t n = 1);
  void inc(std::uint64_t n, Clock::time_point now);

  [[nodiscard]] std::uint64_t value() const;
  [[nodiscard]] std::uint64_t value(Clock::time_point now) const;

  void reset();
  [[nodiscard]] const RollingConfig& config() const noexcept {
    return config_;
  }

 private:
  const RollingConfig config_;
  const double slot_width_s_;
  const Clock::time_point epoch_;
  mutable scwc::Mutex mutex_{"obs.rolling"};
  mutable std::vector<std::uint64_t> slots_
      SCWC_GUARDED_BY(mutex_);  // ring payload
  mutable std::vector<std::int64_t> slot_ids_
      SCWC_GUARDED_BY(mutex_);  // absolute index, -1 = empty
};

/// Fixed-bucket histogram restricted to the trailing window. Bucket
/// semantics (cumulative upper bounds, implicit +Inf overflow, NaN and
/// negative observations dropped) match metrics.hpp's Histogram.
class RollingHistogram {
 public:
  using Clock = std::chrono::steady_clock;

  /// `upper_bounds` must be strictly increasing and non-empty;
  /// `config.window_s` and `config.slots` must be positive.
  RollingHistogram(std::vector<double> upper_bounds, RollingConfig config = {});

  void observe(double v);
  void observe(double v, Clock::time_point now);

  [[nodiscard]] RollingHistogramSnapshot snapshot() const;
  [[nodiscard]] RollingHistogramSnapshot snapshot(Clock::time_point now) const;

  void reset();
  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  [[nodiscard]] const RollingConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Slot {
    std::vector<std::uint64_t> buckets;
    std::uint64_t count = 0;
    double sum = 0.0;
    std::int64_t id = -1;  // absolute slot index; -1 = empty
  };

  const RollingConfig config_;
  const double slot_width_s_;
  const std::vector<double> bounds_;
  const Clock::time_point epoch_;
  mutable scwc::Mutex mutex_{"obs.rolling"};
  mutable std::vector<Slot> slots_ SCWC_GUARDED_BY(mutex_);
};

/// Null-safe wrapper handed out by MetricsRegistry::rolling_histogram.
class RollingHistogramHandle {
 public:
  RollingHistogramHandle() = default;
  explicit RollingHistogramHandle(RollingHistogram* h) noexcept : h_(h) {}
  void observe(double v) const {
    if (h_ != nullptr) h_->observe(v);
  }

 private:
  RollingHistogram* h_ = nullptr;
};

}  // namespace scwc::obs
