#include "nn/conv.hpp"

#include <limits>

#include "common/error.hpp"
#include "linalg/gemm.hpp"

namespace scwc::nn {

Conv1d::Conv1d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t stride, Rng& rng)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel),
      stride_(stride),
      w_(kernel * in_channels, out_channels),
      dw_(kernel * in_channels, out_channels),
      b_(out_channels, 0.0),
      db_(out_channels, 0.0) {
  SCWC_REQUIRE(kernel >= 1 && stride >= 1, "Conv1d: bad kernel/stride");
  glorot_init(w_.flat(), kernel * in_channels, out_channels, rng);
}

std::size_t Conv1d::output_steps(std::size_t input_steps) const {
  SCWC_REQUIRE(input_steps >= kernel_,
               "Conv1d: sequence shorter than the kernel");
  return (input_steps - kernel_) / stride_ + 1;
}

Sequence Conv1d::forward(const Sequence& x) {
  SCWC_REQUIRE(x.features() == in_ch_, "Conv1d: channel mismatch");
  cached_input_ = x;
  const std::size_t t_out = output_steps(x.steps());
  const std::size_t batch = x.batch();

  Sequence out(t_out, batch, out_ch_);
  linalg::Matrix window(batch, kernel_ * in_ch_);
  for (std::size_t to = 0; to < t_out; ++to) {
    const std::size_t t0 = to * stride_;
    // im2col for this output step: concatenate the kernel_ input steps.
    for (std::size_t kk = 0; kk < kernel_; ++kk) {
      const linalg::Matrix& step = x[t0 + kk];
      for (std::size_t r = 0; r < batch; ++r) {
        const auto src = step.row(r);
        auto dst = window.row(r);
        for (std::size_t c = 0; c < in_ch_; ++c) {
          dst[kk * in_ch_ + c] = src[c];
        }
      }
    }
    out[to] = linalg::matmul(window, w_);
    for (std::size_t r = 0; r < batch; ++r) {
      auto row = out[to].row(r);
      for (std::size_t c = 0; c < out_ch_; ++c) row[c] += b_[c];
    }
  }
  return out;
}

Sequence Conv1d::backward(const Sequence& dout) {
  const std::size_t t_out = dout.steps();
  const std::size_t batch = dout.batch();
  SCWC_REQUIRE(dout.features() == out_ch_, "Conv1d: gradient width mismatch");
  SCWC_REQUIRE(t_out == output_steps(cached_input_.steps()),
               "Conv1d: backward before forward");

  Sequence dx = cached_input_.zeros_like();
  linalg::Matrix window(batch, kernel_ * in_ch_);
  for (std::size_t to = 0; to < t_out; ++to) {
    const std::size_t t0 = to * stride_;
    for (std::size_t kk = 0; kk < kernel_; ++kk) {
      const linalg::Matrix& step = cached_input_[t0 + kk];
      for (std::size_t r = 0; r < batch; ++r) {
        const auto src = step.row(r);
        auto dst = window.row(r);
        for (std::size_t c = 0; c < in_ch_; ++c) {
          dst[kk * in_ch_ + c] = src[c];
        }
      }
    }
    linalg::matmul_at_b_accumulate(window, dout[to], dw_);
    for (std::size_t r = 0; r < batch; ++r) {
      const auto row = dout[to].row(r);
      for (std::size_t c = 0; c < out_ch_; ++c) db_[c] += row[c];
    }
    const linalg::Matrix dwin = linalg::matmul_a_bt(dout[to], w_);
    for (std::size_t kk = 0; kk < kernel_; ++kk) {
      linalg::Matrix& dstep = dx[t0 + kk];
      for (std::size_t r = 0; r < batch; ++r) {
        const auto src = dwin.row(r);
        auto dst = dstep.row(r);
        for (std::size_t c = 0; c < in_ch_; ++c) {
          dst[c] += src[kk * in_ch_ + c];
        }
      }
    }
  }
  return dx;
}

void Conv1d::collect_params(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{w_.flat(), dw_.flat()});
  out.push_back(ParamRef{{b_}, {db_}});
}

Sequence MaxPool1d::forward(const Sequence& x) {
  SCWC_REQUIRE(pool_ >= 1, "MaxPool1d: bad pool size");
  input_steps_ = x.steps();
  batch_ = x.batch();
  channels_ = x.features();
  const std::size_t t_out = output_steps(x.steps());
  SCWC_REQUIRE(t_out >= 1, "MaxPool1d: sequence shorter than the pool");

  Sequence out(t_out, batch_, channels_);
  argmax_.assign(t_out * batch_ * channels_, 0);
  for (std::size_t to = 0; to < t_out; ++to) {
    for (std::size_t r = 0; r < batch_; ++r) {
      auto dst = out[to].row(r);
      for (std::size_t c = 0; c < channels_; ++c) {
        double best = -std::numeric_limits<double>::infinity();
        std::size_t best_t = to * pool_;
        for (std::size_t kk = 0; kk < pool_; ++kk) {
          const double v = x[to * pool_ + kk](r, c);
          if (v > best) {
            best = v;
            best_t = to * pool_ + kk;
          }
        }
        dst[c] = best;
        argmax_[(to * batch_ + r) * channels_ + c] = best_t;
      }
    }
  }
  return out;
}

Sequence MaxPool1d::backward(const Sequence& dout) const {
  SCWC_REQUIRE(dout.batch() == batch_ && dout.features() == channels_,
               "MaxPool1d: gradient shape mismatch");
  Sequence dx(input_steps_, batch_, channels_);
  const std::size_t t_out = dout.steps();
  for (std::size_t to = 0; to < t_out; ++to) {
    for (std::size_t r = 0; r < batch_; ++r) {
      const auto src = dout[to].row(r);
      for (std::size_t c = 0; c < channels_; ++c) {
        const std::size_t t = argmax_[(to * batch_ + r) * channels_ + c];
        dx[t](r, c) += src[c];
      }
    }
  }
  return dx;
}

}  // namespace scwc::nn
