#include "nn/models.hpp"

#include <sstream>

#include "common/error.hpp"

namespace scwc::nn {

Sequence SequenceDropout::forward(const Sequence& x, bool train) {
  if (!train || p_ <= 0.0) {
    masks_.clear();
    return x;
  }
  const double keep = 1.0 - p_;
  const double scale = 1.0 / keep;
  masks_.assign(x.steps(), linalg::Matrix());
  Sequence out(x.steps(), x.batch(), x.features());
  for (std::size_t t = 0; t < x.steps(); ++t) {
    masks_[t] = linalg::Matrix(x.batch(), x.features());
    auto m = masks_[t].flat();
    const auto src = x[t].flat();
    auto dst = out[t].flat();
    for (std::size_t i = 0; i < src.size(); ++i) {
      const double keep_it = rng_.bernoulli(keep) ? scale : 0.0;
      m[i] = keep_it;
      dst[i] = src[i] * keep_it;
    }
  }
  return out;
}

Sequence SequenceDropout::backward(const Sequence& dout) const {
  if (masks_.empty()) return dout;
  Sequence din(dout.steps(), dout.batch(), dout.features());
  for (std::size_t t = 0; t < dout.steps(); ++t) {
    const auto m = masks_[t].flat();
    const auto src = dout[t].flat();
    auto dst = din[t].flat();
    for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] * m[i];
  }
  return din;
}

Sequence SequenceLeakyRelu::forward(const Sequence& x) {
  cached_input_ = x;
  Sequence out(x.steps(), x.batch(), x.features());
  for (std::size_t t = 0; t < x.steps(); ++t) {
    const auto src = x[t].flat();
    auto dst = out[t].flat();
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] = src[i] > 0.0 ? src[i] : slope_ * src[i];
    }
  }
  return out;
}

Sequence SequenceLeakyRelu::backward(const Sequence& dout) const {
  Sequence din(dout.steps(), dout.batch(), dout.features());
  for (std::size_t t = 0; t < dout.steps(); ++t) {
    const auto x = cached_input_[t].flat();
    const auto src = dout[t].flat();
    auto dst = din[t].flat();
    for (std::size_t i = 0; i < src.size(); ++i) {
      dst[i] = x[i] > 0.0 ? src[i] : slope_ * src[i];
    }
  }
  return din;
}

SequenceClassifier::SequenceClassifier(const RnnModelConfig& config)
    : config_(config) {
  SCWC_REQUIRE(config.lstm_layers >= 1 && config.lstm_layers <= 4,
               "SequenceClassifier: 1..4 LSTM layers supported");
  Rng rng(config.seed);

  std::size_t steps = config.seq_len;
  std::size_t features = config.input_features;

  if (config.use_cnn) {
    conv1_ = std::make_unique<Conv1d>(features, config.conv_channels,
                                      config.conv1_kernel, config.conv1_stride,
                                      rng);
    conv1_act_ = std::make_unique<SequenceLeakyRelu>();
    steps = conv1_->output_steps(steps);
    pool_ = std::make_unique<MaxPool1d>(config.pool);
    steps = pool_->output_steps(steps);
    conv2_ = std::make_unique<Conv1d>(config.conv_channels,
                                      config.conv_channels,
                                      config.conv2_kernel, config.conv2_stride,
                                      rng);
    conv2_act_ = std::make_unique<SequenceLeakyRelu>();
    steps = conv2_->output_steps(steps);
    features = config.conv_channels;
  }
  lstm_steps_ = steps;
  SCWC_REQUIRE(lstm_steps_ >= 2,
               "SequenceClassifier: conv front end collapsed the sequence");

  std::size_t in = features;
  for (std::size_t layer = 0; layer < config.lstm_layers; ++layer) {
    lstms_.push_back(std::make_unique<BiLstm>(in, config.hidden, rng));
    in = 2 * config.hidden;
    if (layer + 1 < config.lstm_layers) {
      lstm_dropouts_.push_back(std::make_unique<SequenceDropout>(
          config.dropout, rng.next_u64()));
    }
  }

  // Paper head: FC projects the concatenated final states down to a feature
  // size equal to the (LSTM input) sequence length.
  fc1_ = std::make_unique<Dense>(2 * config.hidden, lstm_steps_, rng);
  head_dropout_ = std::make_unique<Dropout>(config.dropout, rng.next_u64());
  head_act_ = std::make_unique<LeakyRelu>();
  fc2_ = std::make_unique<Dense>(lstm_steps_, config.num_classes, rng);
}

linalg::Matrix SequenceClassifier::forward(const Sequence& x, bool train) {
  SCWC_REQUIRE(x.steps() == config_.seq_len,
               "SequenceClassifier: sequence length mismatch");
  SCWC_REQUIRE(x.features() == config_.input_features,
               "SequenceClassifier: feature width mismatch");
  last_batch_ = x.batch();

  Sequence h = x;
  if (config_.use_cnn) {
    h = conv1_->forward(h);
    h = conv1_act_->forward(h);
    h = pool_->forward(h);
    h = conv2_->forward(h);
    h = conv2_act_->forward(h);
  }
  for (std::size_t layer = 0; layer < lstms_.size(); ++layer) {
    h = lstms_[layer]->forward(h);
    if (layer < lstm_dropouts_.size()) {
      h = lstm_dropouts_[layer]->forward(h, train);
    }
  }

  // Final-state concatenation: forward direction's h_T (first half of the
  // last step) and backward direction's h_1 (second half of step 0).
  const std::size_t hid = config_.hidden;
  linalg::Matrix summary(last_batch_, 2 * hid);
  const linalg::Matrix& last_step = h[h.steps() - 1];
  const linalg::Matrix& first_step = h[0];
  for (std::size_t r = 0; r < last_batch_; ++r) {
    auto dst = summary.row(r);
    const auto fwd = last_step.row(r);
    const auto bwd = first_step.row(r);
    for (std::size_t k = 0; k < hid; ++k) {
      dst[k] = fwd[k];
      dst[hid + k] = bwd[hid + k];
    }
  }

  linalg::Matrix z = fc1_->forward(summary);
  z = head_dropout_->forward(z, train);
  z = head_act_->forward(z);
  return fc2_->forward(z);
}

void SequenceClassifier::backward(const linalg::Matrix& dlogits) {
  linalg::Matrix dz = fc2_->backward(dlogits);
  dz = head_act_->backward(dz);
  dz = head_dropout_->backward(dz);
  const linalg::Matrix dsummary = fc1_->backward(dz);

  // Scatter the summary gradient back into the BiLSTM output sequence.
  const std::size_t hid = config_.hidden;
  Sequence dh(lstm_steps_, last_batch_, 2 * hid);
  for (std::size_t r = 0; r < last_batch_; ++r) {
    const auto src = dsummary.row(r);
    auto last = dh[lstm_steps_ - 1].row(r);
    auto first = dh[0].row(r);
    for (std::size_t k = 0; k < hid; ++k) {
      last[k] += src[k];
      first[hid + k] += src[hid + k];
    }
  }

  for (std::size_t layer = lstms_.size(); layer-- > 0;) {
    if (layer < lstm_dropouts_.size()) {
      dh = lstm_dropouts_[layer]->backward(dh);
    }
    dh = lstms_[layer]->backward(dh);
  }

  if (config_.use_cnn) {
    dh = conv2_act_->backward(dh);
    dh = conv2_->backward(dh);
    dh = pool_->backward(dh);
    dh = conv1_act_->backward(dh);
    (void)conv1_->backward(dh);  // input gradient unused
  }
}

void SequenceClassifier::collect_params(std::vector<ParamRef>& out) {
  if (config_.use_cnn) {
    conv1_->collect_params(out);
    conv2_->collect_params(out);
  }
  for (auto& lstm : lstms_) lstm->collect_params(out);
  fc1_->collect_params(out);
  fc2_->collect_params(out);
}

std::string SequenceClassifier::display_name() const {
  std::ostringstream os;
  if (config_.use_cnn) {
    os << "CNN-LSTM (h=" << config_.hidden;
    if (config_.conv1_kernel <= 3) os << ", small kernel";
    os << ")";
  } else {
    os << "LSTM (h=" << config_.hidden;
    if (config_.lstm_layers > 1) os << ", " << config_.lstm_layers << "-layer";
    os << ")";
  }
  return os.str();
}

}  // namespace scwc::nn
