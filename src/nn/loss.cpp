#include "nn/loss.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace scwc::nn {

linalg::Matrix log_softmax(const linalg::Matrix& logits) {
  linalg::Matrix out(logits.rows(), logits.cols());
  for (std::size_t r = 0; r < logits.rows(); ++r) {
    const auto src = logits.row(r);
    auto dst = out.row(r);
    double max_v = src[0];
    for (const double v : src) max_v = std::max(max_v, v);
    double sum = 0.0;
    for (std::size_t c = 0; c < src.size(); ++c) {
      sum += std::exp(src[c] - max_v);
    }
    const double log_sum = std::log(sum) + max_v;
    for (std::size_t c = 0; c < src.size(); ++c) {
      dst[c] = src[c] - log_sum;
    }
  }
  return out;
}

LossResult softmax_nll(const linalg::Matrix& logits,
                       std::span<const int> targets) {
  SCWC_REQUIRE(logits.rows() == targets.size(),
               "softmax_nll: batch size mismatch");
  SCWC_REQUIRE(logits.rows() > 0, "softmax_nll: empty batch");
  const std::size_t batch = logits.rows();
  const std::size_t classes = logits.cols();
  const double inv_batch = 1.0 / static_cast<double>(batch);

  LossResult res;
  res.dlogits = linalg::Matrix(batch, classes);
  res.predictions.resize(batch);

  for (std::size_t r = 0; r < batch; ++r) {
    const auto src = logits.row(r);
    auto grad = res.dlogits.row(r);
    const int target = targets[r];
    SCWC_REQUIRE(target >= 0 && static_cast<std::size_t>(target) < classes,
                 "softmax_nll: target out of range");

    double max_v = src[0];
    std::size_t argmax = 0;
    for (std::size_t c = 0; c < classes; ++c) {
      if (src[c] > max_v) {
        max_v = src[c];
        argmax = c;
      }
    }
    res.predictions[r] = static_cast<int>(argmax);

    double sum = 0.0;
    for (std::size_t c = 0; c < classes; ++c) {
      sum += std::exp(src[c] - max_v);
    }
    const double log_sum = std::log(sum) + max_v;
    res.loss += (log_sum - src[static_cast<std::size_t>(target)]) * inv_batch;

    for (std::size_t c = 0; c < classes; ++c) {
      const double p = std::exp(src[c] - log_sum);
      grad[c] = (p - (c == static_cast<std::size_t>(target) ? 1.0 : 0.0)) *
                inv_batch;
    }
  }
  return res;
}

}  // namespace scwc::nn
