#include "nn/scheduler.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace scwc::nn {

CyclicalCosineLr::CyclicalCosineLr(double max_lr, double min_lr,
                                   std::size_t cycle_steps, double peak_decay)
    : max_lr_(max_lr),
      min_lr_(min_lr),
      cycle_steps_(cycle_steps),
      peak_decay_(peak_decay) {
  SCWC_REQUIRE(max_lr > 0.0 && min_lr >= 0.0 && min_lr <= max_lr,
               "CyclicalCosineLr: need 0 <= min_lr <= max_lr");
  SCWC_REQUIRE(cycle_steps >= 1, "CyclicalCosineLr: cycle must be >= 1 step");
  SCWC_REQUIRE(peak_decay > 0.0 && peak_decay <= 1.0,
               "CyclicalCosineLr: peak_decay in (0, 1]");
}

double CyclicalCosineLr::at(std::size_t step) const {
  const std::size_t cycle = step / cycle_steps_;
  const std::size_t pos = step % cycle_steps_;
  const double peak =
      max_lr_ * std::pow(peak_decay_, static_cast<double>(cycle));
  const double span = peak - min_lr_;
  const double phase = static_cast<double>(pos) /
                       static_cast<double>(cycle_steps_);
  return min_lr_ + 0.5 * span * (1.0 + std::cos(std::numbers::pi * phase));
}

double CyclicalCosineLr::next() { return at(counter_++); }

}  // namespace scwc::nn
