// Parameter bookkeeping for the neural-network layers.
//
// Every layer owns its weights and gradients as flat double buffers and
// registers them with the optimiser through ParamRef views; the optimiser
// never knows layer structure, and layers never know the update rule.
#pragma once

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

#include "common/rng.hpp"

namespace scwc::nn {

/// A view over one parameter buffer and its gradient buffer.
struct ParamRef {
  std::span<double> value;
  std::span<double> grad;
};

/// Interface implemented by anything owning trainable parameters.
class Parametrized {
 public:
  virtual ~Parametrized() = default;

  /// Appends this module's parameter views to `out`.
  virtual void collect_params(std::vector<ParamRef>& out) = 0;

  /// Zeroes all gradient buffers.
  void zero_grad() {
    std::vector<ParamRef> refs;
    collect_params(refs);
    for (auto& r : refs) {
      for (double& g : r.grad) g = 0.0;
    }
  }

  /// Total trainable scalar count.
  std::size_t parameter_count() {
    std::vector<ParamRef> refs;
    collect_params(refs);
    std::size_t n = 0;
    for (const auto& r : refs) n += r.value.size();
    return n;
  }
};

/// Glorot/Xavier uniform initialisation over a flat buffer treated as a
/// fan_in×fan_out matrix.
inline void glorot_init(std::span<double> w, std::size_t fan_in,
                        std::size_t fan_out, Rng& rng) {
  const double limit =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (double& x : w) x = rng.uniform(-limit, limit);
}

}  // namespace scwc::nn
