// Long Short-Term Memory layers with full backpropagation through time.
//
// LstmLayer is a single direction (optionally processing the sequence in
// reverse); BiLstm pairs two of them and concatenates their per-step
// outputs, exactly the "bidirectional LSTM" of Section V-A. The step
// arithmetic is batched: each timestep is two GEMMs (input and recurrent)
// over the whole minibatch.
#pragma once

#include "nn/param.hpp"
#include "nn/sequence.hpp"

namespace scwc::nn {

/// One LSTM direction. Gate layout in the fused buffers is [i | f | g | o].
class LstmLayer final : public Parametrized {
 public:
  /// `reverse` processes steps T-1..0 (the "backward" half of a BiLSTM);
  /// outputs are stored at their original time indices either way.
  LstmLayer(std::size_t input_size, std::size_t hidden_size, bool reverse,
            Rng& rng);

  /// Full-sequence forward; returns h_t per step (batch × hidden each).
  [[nodiscard]] Sequence forward(const Sequence& x);

  /// BPTT; `dout[t]` is dL/dh_t. Returns dL/dx and accumulates weight grads.
  [[nodiscard]] Sequence backward(const Sequence& dout);

  void collect_params(std::vector<ParamRef>& out) override;

  [[nodiscard]] std::size_t hidden_size() const noexcept { return hidden_; }
  [[nodiscard]] std::size_t input_size() const noexcept { return input_; }
  [[nodiscard]] bool is_reverse() const noexcept { return reverse_; }

 private:
  void step_forward(const linalg::Matrix& x_t, const linalg::Matrix& h_prev,
                    const linalg::Matrix& c_prev, linalg::Matrix& gates,
                    linalg::Matrix& c_t, linalg::Matrix& h_t) const;

  std::size_t input_;
  std::size_t hidden_;
  bool reverse_;

  linalg::Matrix w_;   // input weights  (input × 4H)
  linalg::Matrix u_;   // recurrent weights (hidden × 4H)
  linalg::Vector b_;   // bias (4H), forget gate initialised to 1
  linalg::Matrix dw_;
  linalg::Matrix du_;
  linalg::Vector db_;

  // Caches for BPTT (indexed in processing order).
  Sequence cached_input_;
  std::vector<linalg::Matrix> gates_;   // post-activation [i f g o]
  std::vector<linalg::Matrix> cells_;   // c_t
  std::vector<linalg::Matrix> hiddens_; // h_t
};

/// Bidirectional LSTM: concatenation of a forward and a reverse LstmLayer.
class BiLstm final : public Parametrized {
 public:
  BiLstm(std::size_t input_size, std::size_t hidden_size, Rng& rng);

  /// (T × B × input) → (T × B × 2·hidden).
  [[nodiscard]] Sequence forward(const Sequence& x);
  [[nodiscard]] Sequence backward(const Sequence& dout);

  void collect_params(std::vector<ParamRef>& out) override;

  [[nodiscard]] std::size_t hidden_size() const noexcept {
    return forward_.hidden_size();
  }

 private:
  LstmLayer forward_;
  LstmLayer backward_;
};

}  // namespace scwc::nn
