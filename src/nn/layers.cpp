#include "nn/layers.hpp"

#include "common/error.hpp"
#include "linalg/gemm.hpp"

namespace scwc::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features, Rng& rng)
    : in_(in_features),
      out_(out_features),
      w_(in_features, out_features),
      dw_(in_features, out_features),
      b_(out_features, 0.0),
      db_(out_features, 0.0) {
  glorot_init(w_.flat(), in_features, out_features, rng);
}

linalg::Matrix Dense::forward(const linalg::Matrix& x) {
  SCWC_REQUIRE(x.cols() == in_, "Dense: input width mismatch");
  cached_input_ = x;
  linalg::Matrix y = linalg::matmul(x, w_);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    auto row = y.row(r);
    for (std::size_t c = 0; c < out_; ++c) row[c] += b_[c];
  }
  return y;
}

linalg::Matrix Dense::backward(const linalg::Matrix& dout) {
  SCWC_REQUIRE(dout.cols() == out_, "Dense: gradient width mismatch");
  SCWC_REQUIRE(dout.rows() == cached_input_.rows(),
               "Dense: backward before forward");
  linalg::matmul_at_b_accumulate(cached_input_, dout, dw_);
  for (std::size_t r = 0; r < dout.rows(); ++r) {
    const auto row = dout.row(r);
    for (std::size_t c = 0; c < out_; ++c) db_[c] += row[c];
  }
  return linalg::matmul_a_bt(dout, w_);
}

void Dense::collect_params(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{w_.flat(), dw_.flat()});
  out.push_back(ParamRef{{b_}, {db_}});
}

linalg::Matrix Dropout::forward(const linalg::Matrix& x, bool train) {
  if (!train || p_ <= 0.0) {
    mask_ = linalg::Matrix();
    return x;
  }
  mask_ = linalg::Matrix(x.rows(), x.cols());
  linalg::Matrix y(x.rows(), x.cols());
  const double keep = 1.0 - p_;
  const double scale = 1.0 / keep;
  auto m = mask_.flat();
  auto src = x.flat();
  auto dst = y.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    const double keep_it = rng_.bernoulli(keep) ? scale : 0.0;
    m[i] = keep_it;
    dst[i] = src[i] * keep_it;
  }
  return y;
}

linalg::Matrix Dropout::backward(const linalg::Matrix& dout) const {
  if (mask_.empty()) return dout;
  SCWC_REQUIRE(mask_.rows() == dout.rows() && mask_.cols() == dout.cols(),
               "Dropout: gradient shape mismatch");
  linalg::Matrix din(dout.rows(), dout.cols());
  auto m = mask_.flat();
  auto src = dout.flat();
  auto dst = din.flat();
  for (std::size_t i = 0; i < src.size(); ++i) dst[i] = src[i] * m[i];
  return din;
}

linalg::Matrix LeakyRelu::forward(const linalg::Matrix& x) {
  cached_input_ = x;
  linalg::Matrix y(x.rows(), x.cols());
  auto src = x.flat();
  auto dst = y.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = src[i] > 0.0 ? src[i] : slope_ * src[i];
  }
  return y;
}

linalg::Matrix LeakyRelu::backward(const linalg::Matrix& dout) const {
  SCWC_REQUIRE(dout.rows() == cached_input_.rows() &&
                   dout.cols() == cached_input_.cols(),
               "LeakyRelu: backward before forward");
  linalg::Matrix din(dout.rows(), dout.cols());
  auto x = cached_input_.flat();
  auto src = dout.flat();
  auto dst = din.flat();
  for (std::size_t i = 0; i < src.size(); ++i) {
    dst[i] = x[i] > 0.0 ? src[i] : slope_ * src[i];
  }
  return din;
}

}  // namespace scwc::nn
