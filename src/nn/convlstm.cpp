#include "nn/convlstm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"

namespace scwc::nn {

namespace {
double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

ConvLstm1d::ConvLstm1d(std::size_t positions, std::size_t in_channels,
                       std::size_t hidden_channels, std::size_t kernel,
                       Rng& rng)
    : positions_(positions),
      in_ch_(in_channels),
      hidden_(hidden_channels),
      kernel_(kernel),
      w_(kernel * in_channels, 4 * hidden_channels),
      u_(kernel * hidden_channels, 4 * hidden_channels),
      b_(4 * hidden_channels, 0.0),
      dw_(kernel * in_channels, 4 * hidden_channels),
      du_(kernel * hidden_channels, 4 * hidden_channels),
      db_(4 * hidden_channels, 0.0) {
  SCWC_REQUIRE(kernel % 2 == 1, "ConvLstm1d: kernel must be odd");
  SCWC_REQUIRE(positions >= 1, "ConvLstm1d: need at least one position");
  glorot_init(w_.flat(), kernel * in_channels, 4 * hidden_channels, rng);
  glorot_init(u_.flat(), kernel * hidden_channels, 4 * hidden_channels, rng);
  for (std::size_t c = 0; c < hidden_; ++c) b_[hidden_ + c] = 1.0;  // forget
}

linalg::Matrix ConvLstm1d::im2col(const linalg::Matrix& frame,
                                  std::size_t channels) const {
  const std::size_t batch = frame.rows();
  const std::size_t pad = kernel_ / 2;
  linalg::Matrix col(batch * positions_, kernel_ * channels);
  for (std::size_t r = 0; r < batch; ++r) {
    const auto src = frame.row(r);
    for (std::size_t l = 0; l < positions_; ++l) {
      auto dst = col.row(r * positions_ + l);
      for (std::size_t kk = 0; kk < kernel_; ++kk) {
        const std::ptrdiff_t pos = static_cast<std::ptrdiff_t>(l + kk) -
                                   static_cast<std::ptrdiff_t>(pad);
        if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(positions_)) {
          continue;  // zero padding
        }
        for (std::size_t c = 0; c < channels; ++c) {
          dst[kk * channels + c] =
              src[static_cast<std::size_t>(pos) * channels + c];
        }
      }
    }
  }
  return col;
}

void ConvLstm1d::col2im(const linalg::Matrix& dcol, std::size_t channels,
                        linalg::Matrix& dframe) const {
  const std::size_t batch = dframe.rows();
  const std::size_t pad = kernel_ / 2;
  for (std::size_t r = 0; r < batch; ++r) {
    auto dst = dframe.row(r);
    for (std::size_t l = 0; l < positions_; ++l) {
      const auto src = dcol.row(r * positions_ + l);
      for (std::size_t kk = 0; kk < kernel_; ++kk) {
        const std::ptrdiff_t pos = static_cast<std::ptrdiff_t>(l + kk) -
                                   static_cast<std::ptrdiff_t>(pad);
        if (pos < 0 || pos >= static_cast<std::ptrdiff_t>(positions_)) {
          continue;
        }
        for (std::size_t c = 0; c < channels; ++c) {
          dst[static_cast<std::size_t>(pos) * channels + c] +=
              src[kk * channels + c];
        }
      }
    }
  }
}

Sequence ConvLstm1d::forward(const Sequence& x) {
  SCWC_REQUIRE(x.features() == positions_ * in_ch_,
               "ConvLstm1d: frame width mismatch");
  const std::size_t steps = x.steps();
  const std::size_t batch = x.batch();
  const std::size_t rows = batch * positions_;

  cached_input_ = x;
  gates_.assign(steps, linalg::Matrix());
  cells_.assign(steps, linalg::Matrix(rows, hidden_));
  hiddens_.assign(steps, linalg::Matrix(batch, positions_ * hidden_));

  Sequence out(steps, batch, positions_ * hidden_);
  linalg::Matrix h_prev(batch, positions_ * hidden_);
  linalg::Matrix c_prev(rows, hidden_);

  for (std::size_t t = 0; t < steps; ++t) {
    // Fused pre-activations via two convolutions (as GEMMs over columns).
    linalg::Matrix z = linalg::matmul(im2col(x[t], in_ch_), w_);
    linalg::matmul_accumulate(im2col(h_prev, hidden_), u_, z);

    linalg::Matrix& c_t = cells_[t];
    linalg::Matrix& h_frame = hiddens_[t];
    for (std::size_t row = 0; row < rows; ++row) {
      auto zr = z.row(row);
      const auto cp = c_prev.row(row);
      auto cr = c_t.row(row);
      const std::size_t b_idx = row / positions_;
      const std::size_t l_idx = row % positions_;
      auto hr = h_frame.row(b_idx);
      for (std::size_t c = 0; c < hidden_; ++c) {
        const double gi = sigmoid(zr[c] + b_[c]);
        const double gf = sigmoid(zr[hidden_ + c] + b_[hidden_ + c]);
        const double gg = std::tanh(zr[2 * hidden_ + c] + b_[2 * hidden_ + c]);
        const double go = sigmoid(zr[3 * hidden_ + c] + b_[3 * hidden_ + c]);
        zr[c] = gi;
        zr[hidden_ + c] = gf;
        zr[2 * hidden_ + c] = gg;
        zr[3 * hidden_ + c] = go;
        cr[c] = gf * cp[c] + gi * gg;
        hr[l_idx * hidden_ + c] = go * std::tanh(cr[c]);
      }
    }
    gates_[t] = std::move(z);
    out[t] = h_frame;
    h_prev = h_frame;
    c_prev = c_t;
  }
  return out;
}

Sequence ConvLstm1d::backward(const Sequence& dout) {
  const std::size_t steps = cached_input_.steps();
  const std::size_t batch = cached_input_.batch();
  const std::size_t rows = batch * positions_;
  SCWC_REQUIRE(dout.steps() == steps && dout.batch() == batch,
               "ConvLstm1d: gradient shape mismatch");
  SCWC_REQUIRE(dout.features() == positions_ * hidden_,
               "ConvLstm1d: gradient width mismatch");

  Sequence dx(steps, batch, positions_ * in_ch_);
  linalg::Matrix dh_frame(batch, positions_ * hidden_);  // from step t+1
  linalg::Matrix dc(rows, hidden_);
  linalg::Matrix dz(rows, 4 * hidden_);

  for (std::size_t t = steps; t-- > 0;) {
    const linalg::Matrix& gates = gates_[t];
    const linalg::Matrix& c_t = cells_[t];
    const linalg::Matrix* c_prev = t > 0 ? &cells_[t - 1] : nullptr;
    const linalg::Matrix* h_prev = t > 0 ? &hiddens_[t - 1] : nullptr;

    for (std::size_t row = 0; row < rows; ++row) {
      const auto g = gates.row(row);
      const auto c = c_t.row(row);
      const std::size_t b_idx = row / positions_;
      const std::size_t l_idx = row % positions_;
      const auto dout_row = dout[t].row(b_idx);
      const auto dh_row = dh_frame.row(b_idx);
      auto dcr = dc.row(row);
      auto zr = dz.row(row);
      for (std::size_t ch = 0; ch < hidden_; ++ch) {
        const double gi = g[ch];
        const double gf = g[hidden_ + ch];
        const double gg = g[2 * hidden_ + ch];
        const double go = g[3 * hidden_ + ch];
        const double tc = std::tanh(c[ch]);
        const double dht =
            dout_row[l_idx * hidden_ + ch] + dh_row[l_idx * hidden_ + ch];
        const double dct = dcr[ch] + dht * go * (1.0 - tc * tc);
        const double cprev = c_prev != nullptr ? (*c_prev)(row, ch) : 0.0;

        zr[ch] = dct * gg * gi * (1.0 - gi);
        zr[hidden_ + ch] = dct * cprev * gf * (1.0 - gf);
        zr[2 * hidden_ + ch] = dct * gi * (1.0 - gg * gg);
        zr[3 * hidden_ + ch] = dht * tc * go * (1.0 - go);
        dcr[ch] = dct * gf;
      }
    }

    // Parameter gradients.
    linalg::matmul_at_b_accumulate(im2col(cached_input_[t], in_ch_), dz, dw_);
    if (h_prev != nullptr) {
      linalg::matmul_at_b_accumulate(im2col(*h_prev, hidden_), dz, du_);
    }
    for (std::size_t row = 0; row < rows; ++row) {
      const auto zr = dz.row(row);
      for (std::size_t c = 0; c < 4 * hidden_; ++c) db_[c] += zr[c];
    }

    // Upstream gradients through both convolutions.
    const linalg::Matrix dcol_x = linalg::matmul_a_bt(dz, w_);
    col2im(dcol_x, in_ch_, dx[t]);
    dh_frame.fill(0.0);
    const linalg::Matrix dcol_h = linalg::matmul_a_bt(dz, u_);
    col2im(dcol_h, hidden_, dh_frame);
  }
  return dx;
}

void ConvLstm1d::collect_params(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{w_.flat(), dw_.flat()});
  out.push_back(ParamRef{u_.flat(), du_.flat()});
  out.push_back(ParamRef{{b_}, {db_}});
}

ConvLstmClassifier::ConvLstmClassifier(const Config& config)
    : config_(config) {
  Rng rng(config.seed);
  convlstm_ = std::make_unique<ConvLstm1d>(
      config.positions, /*in_channels=*/1, config.hidden_channels,
      config.kernel, rng);
  dropout_ = std::make_unique<Dropout>(config.dropout, rng.next_u64());
  head_ = std::make_unique<Dense>(config.positions * config.hidden_channels,
                                  config.num_classes, rng);
}

linalg::Matrix ConvLstmClassifier::forward(const Sequence& x, bool train) {
  SCWC_REQUIRE(x.features() == config_.positions,
               "ConvLstmClassifier: expects one channel per sensor");
  last_batch_ = x.batch();
  last_steps_ = x.steps();
  const Sequence h = convlstm_->forward(x);

  // Head reads the full final hidden state (positions kept distinct —
  // which sensor lit up matters for workload identity).
  const linalg::Matrix dropped =
      dropout_->forward(h[h.steps() - 1], train);
  return head_->forward(dropped);
}

void ConvLstmClassifier::backward(const linalg::Matrix& dlogits) {
  const linalg::Matrix dfinal =
      dropout_->backward(head_->backward(dlogits));
  Sequence dh(last_steps_, last_batch_,
              config_.positions * config_.hidden_channels);
  dh[last_steps_ - 1] = dfinal;
  (void)convlstm_->backward(dh);
}

void ConvLstmClassifier::collect_params(std::vector<ParamRef>& out) {
  convlstm_->collect_params(out);
  head_->collect_params(out);
}

}  // namespace scwc::nn
