// 1-D convolution and max pooling over the time axis.
//
// The CNN-LSTM baselines of Section V-B feed the input sequence through two
// 1-D convolutional layers sandwiching a max-pooling layer before the
// BiLSTM; the convolution shortens the sequence (valid padding, stride > 1)
// which is where the paper's ~8× training speed-up comes from.
#pragma once

#include "nn/param.hpp"
#include "nn/sequence.hpp"

namespace scwc::nn {

/// Valid-padding 1-D convolution along time: (T,B,C_in) → (T',B,C_out)
/// with T' = (T - kernel)/stride + 1.
class Conv1d final : public Parametrized {
 public:
  Conv1d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t stride, Rng& rng);

  [[nodiscard]] Sequence forward(const Sequence& x);
  [[nodiscard]] Sequence backward(const Sequence& dout);

  void collect_params(std::vector<ParamRef>& out) override;

  [[nodiscard]] std::size_t output_steps(std::size_t input_steps) const;
  [[nodiscard]] std::size_t out_channels() const noexcept { return out_ch_; }
  [[nodiscard]] std::size_t kernel() const noexcept { return kernel_; }
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }

 private:
  std::size_t in_ch_;
  std::size_t out_ch_;
  std::size_t kernel_;
  std::size_t stride_;
  linalg::Matrix w_;   // (kernel · in_ch) × out_ch
  linalg::Matrix dw_;
  linalg::Vector b_;
  linalg::Vector db_;
  Sequence cached_input_;
};

/// Non-overlapping max pooling along time: (T,B,C) → (T/p,B,C). Remainder
/// steps at the tail are dropped (PyTorch default).
class MaxPool1d {
 public:
  explicit MaxPool1d(std::size_t pool) : pool_(pool) {}

  [[nodiscard]] Sequence forward(const Sequence& x);
  [[nodiscard]] Sequence backward(const Sequence& dout) const;

  [[nodiscard]] std::size_t output_steps(std::size_t input_steps) const {
    return input_steps / pool_;
  }

 private:
  std::size_t pool_;
  std::size_t input_steps_ = 0;
  std::size_t batch_ = 0;
  std::size_t channels_ = 0;
  std::vector<std::size_t> argmax_;  // flat (t', b, c) → source step
};

}  // namespace scwc::nn
