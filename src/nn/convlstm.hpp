// ConvLSTM — the paper's "future work" architecture (§VI).
//
// "we believe that the ConvLSTM architecture is promising in its ability
//  to capture convolutional features in both the input-to-state and
//  state-to-state domains" (Shi et al., NeurIPS 2015).
//
// This is the 1-D instantiation for multivariate telemetry: the sensor
// axis plays the role of space. At every time step the four gates are
// computed by same-padded 1-D convolutions over the sensor axis applied to
// both the input frame and the previous hidden state, so the recurrence
// itself is convolutional:
//
//   Z_t = Conv_k(X_t; W) + Conv_k(H_{t-1}; U) + b          (per position)
//   i,f,o = sigmoid(Z…), g = tanh(Z_g)
//   C_t = f ⊙ C_{t-1} + i ⊙ g,   H_t = o ⊙ tanh(C_t)
//
// State tensors are (batch, positions, channels), stored as
// (batch·positions) × channels matrices so every step is two GEMMs after
// an im2col gather, exactly like the dense LSTM.
#pragma once

#include <memory>

#include "nn/layers.hpp"
#include "nn/param.hpp"
#include "nn/sequence.hpp"

namespace scwc::nn {

/// One-dimensional ConvLSTM layer.
///
/// Input sequence steps are (batch × positions·in_channels) matrices
/// (position-major); outputs are (batch × positions·hidden_channels).
class ConvLstm1d final : public Parametrized {
 public:
  /// `positions` is the spatial length (e.g. 7 sensors), `kernel` the
  /// odd-sized convolution width over that axis.
  ConvLstm1d(std::size_t positions, std::size_t in_channels,
             std::size_t hidden_channels, std::size_t kernel, Rng& rng);

  [[nodiscard]] Sequence forward(const Sequence& x);
  [[nodiscard]] Sequence backward(const Sequence& dout);

  void collect_params(std::vector<ParamRef>& out) override;

  [[nodiscard]] std::size_t positions() const noexcept { return positions_; }
  [[nodiscard]] std::size_t hidden_channels() const noexcept {
    return hidden_;
  }

 private:
  /// Gathers the same-padded k-neighbourhood of every position:
  /// (batch × positions·channels) → (batch·positions × kernel·channels).
  [[nodiscard]] linalg::Matrix im2col(const linalg::Matrix& frame,
                                      std::size_t channels) const;
  /// Transpose of im2col: scatter-adds column gradients back to frames.
  void col2im(const linalg::Matrix& dcol, std::size_t channels,
              linalg::Matrix& dframe) const;

  std::size_t positions_;
  std::size_t in_ch_;
  std::size_t hidden_;
  std::size_t kernel_;

  linalg::Matrix w_;   // (kernel·in_ch) × 4·hidden
  linalg::Matrix u_;   // (kernel·hidden) × 4·hidden
  linalg::Vector b_;   // 4·hidden
  linalg::Matrix dw_;
  linalg::Matrix du_;
  linalg::Vector db_;

  Sequence cached_input_;
  std::vector<linalg::Matrix> gates_;    // (B·L × 4C) post-activation
  std::vector<linalg::Matrix> cells_;    // (B·L × C)
  std::vector<linalg::Matrix> hiddens_;  // (B × L·C) frame layout
};

/// ConvLSTM workload classifier: ConvLSTM1d over the sensor axis, global
/// average of the final hidden state over positions, dropout, and a linear
/// head — the §VI candidate, runnable against Table VI's baselines.
class ConvLstmClassifier final : public Parametrized {
 public:
  struct Config {
    std::size_t positions = 7;        ///< sensors
    std::size_t seq_len = 540;
    std::size_t hidden_channels = 16;
    std::size_t kernel = 3;
    std::size_t num_classes = 26;
    double dropout = 0.5;
    std::uint64_t seed = 31415;
  };

  explicit ConvLstmClassifier(const Config& config);

  [[nodiscard]] linalg::Matrix forward(const Sequence& x, bool train);
  void backward(const linalg::Matrix& dlogits);
  void collect_params(std::vector<ParamRef>& out) override;

  [[nodiscard]] std::string display_name() const { return "ConvLSTM"; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }

 private:
  Config config_;
  std::unique_ptr<ConvLstm1d> convlstm_;
  std::unique_ptr<Dropout> dropout_;
  std::unique_ptr<Dense> head_;
  std::size_t last_batch_ = 0;
  std::size_t last_steps_ = 0;
};

}  // namespace scwc::nn
