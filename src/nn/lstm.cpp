#include "nn/lstm.hpp"

#include <cmath>

#include "common/error.hpp"
#include "linalg/gemm.hpp"

namespace scwc::nn {

namespace {
double sigmoid(double x) noexcept { return 1.0 / (1.0 + std::exp(-x)); }
}  // namespace

LstmLayer::LstmLayer(std::size_t input_size, std::size_t hidden_size,
                     bool reverse, Rng& rng)
    : input_(input_size),
      hidden_(hidden_size),
      reverse_(reverse),
      w_(input_size, 4 * hidden_size),
      u_(hidden_size, 4 * hidden_size),
      b_(4 * hidden_size, 0.0),
      dw_(input_size, 4 * hidden_size),
      du_(hidden_size, 4 * hidden_size),
      db_(4 * hidden_size, 0.0) {
  glorot_init(w_.flat(), input_size, 4 * hidden_size, rng);
  glorot_init(u_.flat(), hidden_size, 4 * hidden_size, rng);
  // Standard trick: positive forget-gate bias stabilises early training.
  for (std::size_t h = 0; h < hidden_; ++h) b_[hidden_ + h] = 1.0;
}

void LstmLayer::step_forward(const linalg::Matrix& x_t,
                             const linalg::Matrix& h_prev,
                             const linalg::Matrix& c_prev,
                             linalg::Matrix& gates, linalg::Matrix& c_t,
                             linalg::Matrix& h_t) const {
  // Fused pre-activations: Z = x_t W + h_prev U + b, columns [i f g o].
  gates = linalg::matmul(x_t, w_);
  linalg::matmul_accumulate(h_prev, u_, gates);
  const std::size_t batch = x_t.rows();
  for (std::size_t r = 0; r < batch; ++r) {
    auto z = gates.row(r);
    const auto cp = c_prev.row(r);
    auto c = c_t.row(r);
    auto h = h_t.row(r);
    for (std::size_t k = 0; k < hidden_; ++k) {
      const double zi = z[k] + b_[k];
      const double zf = z[hidden_ + k] + b_[hidden_ + k];
      const double zg = z[2 * hidden_ + k] + b_[2 * hidden_ + k];
      const double zo = z[3 * hidden_ + k] + b_[3 * hidden_ + k];
      const double gi = sigmoid(zi);
      const double gf = sigmoid(zf);
      const double gg = std::tanh(zg);
      const double go = sigmoid(zo);
      z[k] = gi;
      z[hidden_ + k] = gf;
      z[2 * hidden_ + k] = gg;
      z[3 * hidden_ + k] = go;
      c[k] = gf * cp[k] + gi * gg;
      h[k] = go * std::tanh(c[k]);
    }
  }
}

Sequence LstmLayer::forward(const Sequence& x) {
  SCWC_REQUIRE(x.features() == input_, "LstmLayer: input width mismatch");
  const std::size_t steps = x.steps();
  const std::size_t batch = x.batch();

  cached_input_ = x;
  gates_.assign(steps, linalg::Matrix());
  cells_.assign(steps, linalg::Matrix(batch, hidden_));
  hiddens_.assign(steps, linalg::Matrix(batch, hidden_));

  Sequence out(steps, batch, hidden_);
  linalg::Matrix h_prev(batch, hidden_);
  linalg::Matrix c_prev(batch, hidden_);

  for (std::size_t p = 0; p < steps; ++p) {
    const std::size_t t = reverse_ ? steps - 1 - p : p;
    step_forward(x[t], h_prev, c_prev, gates_[p], cells_[p], hiddens_[p]);
    out[t] = hiddens_[p];
    h_prev = hiddens_[p];
    c_prev = cells_[p];
  }
  return out;
}

Sequence LstmLayer::backward(const Sequence& dout) {
  const std::size_t steps = cached_input_.steps();
  const std::size_t batch = cached_input_.batch();
  SCWC_REQUIRE(dout.steps() == steps && dout.batch() == batch,
               "LstmLayer: gradient shape mismatch");
  SCWC_REQUIRE(dout.features() == hidden_,
               "LstmLayer: gradient width mismatch");

  Sequence dx(steps, batch, input_);
  linalg::Matrix dh_next(batch, hidden_);  // dL/dh flowing from step p+1
  linalg::Matrix dc_next(batch, hidden_);
  linalg::Matrix dz(batch, 4 * hidden_);   // pre-activation gradient

  for (std::size_t p = steps; p-- > 0;) {
    const std::size_t t = reverse_ ? steps - 1 - p : p;
    const linalg::Matrix& gates = gates_[p];
    const linalg::Matrix& c_t = cells_[p];
    // h_{p-1}, c_{p-1} in processing order (zeros at p == 0).
    const linalg::Matrix* h_prev = p > 0 ? &hiddens_[p - 1] : nullptr;
    const linalg::Matrix* c_prev = p > 0 ? &cells_[p - 1] : nullptr;

    for (std::size_t r = 0; r < batch; ++r) {
      const auto g = gates.row(r);
      const auto c = c_t.row(r);
      const auto dout_row = dout[t].row(r);
      auto dh = dh_next.row(r);
      auto dc = dc_next.row(r);
      auto z = dz.row(r);
      for (std::size_t k = 0; k < hidden_; ++k) {
        const double gi = g[k];
        const double gf = g[hidden_ + k];
        const double gg = g[2 * hidden_ + k];
        const double go = g[3 * hidden_ + k];
        const double tc = std::tanh(c[k]);
        const double dht = dout_row[k] + dh[k];
        const double dct = dc[k] + dht * go * (1.0 - tc * tc);
        const double cprev = c_prev != nullptr ? (*c_prev)(r, k) : 0.0;

        z[k] = dct * gg * gi * (1.0 - gi);                 // d zi
        z[hidden_ + k] = dct * cprev * gf * (1.0 - gf);    // d zf
        z[2 * hidden_ + k] = dct * gi * (1.0 - gg * gg);   // d zg
        z[3 * hidden_ + k] = dht * tc * go * (1.0 - go);   // d zo

        dc[k] = dct * gf;        // flows to step p-1
        dh[k] = 0.0;             // recomputed below via U
      }
    }

    // Parameter gradients and upstream propagation.
    linalg::matmul_at_b_accumulate(cached_input_[t], dz, dw_);
    if (h_prev != nullptr) {
      linalg::matmul_at_b_accumulate(*h_prev, dz, du_);
    }
    for (std::size_t r = 0; r < batch; ++r) {
      const auto z = dz.row(r);
      for (std::size_t k = 0; k < 4 * hidden_; ++k) db_[k] += z[k];
    }
    dx[t] = linalg::matmul_a_bt(dz, w_);
    dh_next = linalg::matmul_a_bt(dz, u_);
  }
  return dx;
}

void LstmLayer::collect_params(std::vector<ParamRef>& out) {
  out.push_back(ParamRef{w_.flat(), dw_.flat()});
  out.push_back(ParamRef{u_.flat(), du_.flat()});
  out.push_back(ParamRef{{b_}, {db_}});
}

BiLstm::BiLstm(std::size_t input_size, std::size_t hidden_size, Rng& rng)
    : forward_(input_size, hidden_size, /*reverse=*/false, rng),
      backward_(input_size, hidden_size, /*reverse=*/true, rng) {}

Sequence BiLstm::forward(const Sequence& x) {
  const Sequence fwd = forward_.forward(x);
  const Sequence bwd = backward_.forward(x);
  return Sequence::concat_features(fwd, bwd);
}

Sequence BiLstm::backward(const Sequence& dout) {
  const std::size_t h = forward_.hidden_size();
  const std::size_t steps = dout.steps();
  const std::size_t batch = dout.batch();
  SCWC_REQUIRE(dout.features() == 2 * h, "BiLstm: gradient width mismatch");

  Sequence dfwd(steps, batch, h);
  Sequence dbwd(steps, batch, h);
  for (std::size_t t = 0; t < steps; ++t) {
    for (std::size_t r = 0; r < batch; ++r) {
      const auto src = dout[t].row(r);
      auto a = dfwd[t].row(r);
      auto b = dbwd[t].row(r);
      for (std::size_t k = 0; k < h; ++k) {
        a[k] = src[k];
        b[k] = src[h + k];
      }
    }
  }
  Sequence dx = forward_.backward(dfwd);
  const Sequence dx2 = backward_.backward(dbwd);
  for (std::size_t t = 0; t < steps; ++t) dx[t] += dx2[t];
  return dx;
}

void BiLstm::collect_params(std::vector<ParamRef>& out) {
  forward_.collect_params(out);
  backward_.collect_params(out);
}

}  // namespace scwc::nn
