// First-order optimisers over ParamRef views.
#pragma once

#include <vector>

#include "nn/param.hpp"

namespace scwc::nn {

/// Optimiser interface: owns per-parameter state keyed by registration
/// order, applies one update per step() given the current learning rate.
class Optimizer {
 public:
  explicit Optimizer(std::vector<ParamRef> params)
      : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  /// Applies one update using the gradients currently in the buffers.
  virtual void step(double learning_rate) = 0;

  /// Zeroes every gradient buffer.
  void zero_grad() {
    for (auto& p : params_) {
      for (double& g : p.grad) g = 0.0;
    }
  }

  /// Global gradient-norm clipping (returns the pre-clip norm).
  double clip_grad_norm(double max_norm);

 protected:
  std::vector<ParamRef> params_;
};

/// SGD with classical momentum.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<ParamRef> params, double momentum = 0.9);
  void step(double learning_rate) override;

 private:
  double momentum_;
  std::vector<std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<ParamRef> params, double beta1 = 0.9, double beta2 = 0.999,
       double eps = 1e-8);
  void step(double learning_rate) override;

 private:
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<std::vector<double>> m_;
  std::vector<std::vector<double>> v_;
};

}  // namespace scwc::nn
