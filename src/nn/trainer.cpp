#include "nn/trainer.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/log.hpp"
#include "ml/metrics.hpp"
#include "nn/loss.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace scwc::nn {

namespace {

/// Snapshot/restore of all parameters (for best-validation restoration).
std::vector<std::vector<double>> snapshot(SequenceClassifier& model) {
  std::vector<ParamRef> refs;
  model.collect_params(refs);
  std::vector<std::vector<double>> snap;
  snap.reserve(refs.size());
  for (const auto& r : refs) {
    snap.emplace_back(r.value.begin(), r.value.end());
  }
  return snap;
}

void restore(SequenceClassifier& model,
             const std::vector<std::vector<double>>& snap) {
  std::vector<ParamRef> refs;
  model.collect_params(refs);
  SCWC_CHECK(refs.size() == snap.size(), "snapshot shape drifted");
  for (std::size_t i = 0; i < refs.size(); ++i) {
    std::copy(snap[i].begin(), snap[i].end(), refs[i].value.begin());
  }
}

}  // namespace

TrainResult Trainer::fit(SequenceClassifier& model,
                         const data::Tensor3& x_train,
                         std::span<const int> y_train,
                         const data::Tensor3& x_val,
                         std::span<const int> y_val) {
  SCWC_REQUIRE(x_train.trials() == y_train.size(),
               "Trainer: X/y train mismatch");
  SCWC_REQUIRE(x_val.trials() == y_val.size(), "Trainer: X/y val mismatch");
  SCWC_REQUIRE(x_train.trials() > 0, "Trainer: empty training set");

  std::vector<ParamRef> refs;
  model.collect_params(refs);
  Adam optimizer(refs);

  const std::size_t n = x_train.trials();
  const std::size_t batches_per_epoch =
      (n + config_.batch_size - 1) / config_.batch_size;
  CyclicalCosineLr schedule(config_.max_lr, config_.min_lr,
                            std::max<std::size_t>(
                                1, config_.cycle_epochs * batches_per_epoch),
                            /*peak_decay=*/0.9);

  Rng rng(config_.seed);
  TrainResult result;
  std::vector<std::vector<double>> best_weights;
  std::size_t since_best = 0;

  auto& reg = obs::MetricsRegistry::global();
  const obs::CounterHandle epochs_total = reg.counter("scwc_nn_epochs_total");
  const obs::CounterHandle batches_total = reg.counter("scwc_nn_batches_total");
  const obs::GaugeHandle loss_gauge = reg.gauge("scwc_nn_epoch_loss");
  const obs::GaugeHandle acc_gauge = reg.gauge("scwc_nn_val_accuracy");
  const obs::GaugeHandle gnorm_gauge = reg.gauge("scwc_nn_grad_norm");
  const obs::GaugeHandle lr_gauge = reg.gauge("scwc_nn_learning_rate");
  const obs::TraceSpan fit_span("nn.fit");

  for (std::size_t epoch = 0; epoch < config_.max_epochs; ++epoch) {
    const obs::TraceSpan epoch_span("nn.epoch");
    const std::vector<std::size_t> order = rng.permutation(n);
    double epoch_loss = 0.0;

    {
      const obs::TraceSpan train_span("nn.train");
      for (std::size_t b = 0; b < batches_per_epoch; ++b) {
        const std::size_t lo = b * config_.batch_size;
        const std::size_t hi = std::min(n, lo + config_.batch_size);
        const std::span<const std::size_t> rows(order.data() + lo, hi - lo);

        const Sequence batch = Sequence::from_tensor(x_train, rows);
        std::vector<int> targets(rows.size());
        for (std::size_t i = 0; i < rows.size(); ++i) {
          targets[i] = y_train[rows[i]];
        }

        optimizer.zero_grad();
        const linalg::Matrix logits = model.forward(batch, /*train=*/true);
        const LossResult loss = softmax_nll(logits, targets);
        model.backward(loss.dlogits);
        gnorm_gauge.set(optimizer.clip_grad_norm(config_.clip_norm));
        const double lr = schedule.next();
        lr_gauge.set(lr);
        optimizer.step(lr);
        epoch_loss += loss.loss * static_cast<double>(rows.size());
        batches_total.inc();
      }
    }
    epoch_loss /= static_cast<double>(n);
    result.train_loss.push_back(epoch_loss);

    double val_acc = 0.0;
    {
      const obs::TraceSpan validate_span("nn.validate");
      val_acc = evaluate(model, x_val, y_val);
    }
    result.val_accuracy.push_back(val_acc);
    result.epochs_run = epoch + 1;
    epochs_total.inc();
    loss_gauge.set(epoch_loss);
    acc_gauge.set(val_acc);

    if (val_acc > result.best_val_accuracy) {
      result.best_val_accuracy = val_acc;
      result.best_epoch = epoch;
      since_best = 0;
      if (config_.restore_best) best_weights = snapshot(model);
    } else {
      ++since_best;
    }
    if (config_.verbose) {
      SCWC_LOG_INFO(model.display_name()
                    << " epoch " << epoch << " loss " << epoch_loss
                    << " val_acc " << val_acc);
    }
    if (since_best >= config_.patience) break;
  }

  if (config_.restore_best && !best_weights.empty()) {
    restore(model, best_weights);
  }
  return result;
}

std::vector<int> Trainer::predict(SequenceClassifier& model,
                                  const data::Tensor3& x,
                                  std::size_t batch_size) {
  std::vector<int> out;
  out.reserve(x.trials());
  std::vector<std::size_t> rows;
  for (std::size_t lo = 0; lo < x.trials(); lo += batch_size) {
    const std::size_t hi = std::min(x.trials(), lo + batch_size);
    rows.resize(hi - lo);
    for (std::size_t i = lo; i < hi; ++i) rows[i - lo] = i;
    const Sequence batch = Sequence::from_tensor(x, rows);
    const linalg::Matrix logits = model.forward(batch, /*train=*/false);
    for (std::size_t r = 0; r < logits.rows(); ++r) {
      const auto row = logits.row(r);
      std::size_t best = 0;
      for (std::size_t c = 1; c < row.size(); ++c) {
        if (row[c] > row[best]) best = c;
      }
      out.push_back(static_cast<int>(best));
    }
  }
  return out;
}

double Trainer::evaluate(SequenceClassifier& model, const data::Tensor3& x,
                         std::span<const int> y, std::size_t batch_size) {
  const std::vector<int> pred = predict(model, x, batch_size);
  return ml::accuracy(y, pred);
}

}  // namespace scwc::nn
