#include "nn/sequence.hpp"

#include "common/error.hpp"

namespace scwc::nn {

Sequence::Sequence(std::size_t steps, std::size_t batch,
                   std::size_t features) {
  steps_.reserve(steps);
  for (std::size_t t = 0; t < steps; ++t) {
    steps_.emplace_back(batch, features);
  }
}

Sequence Sequence::from_tensor(const data::Tensor3& x,
                               std::span<const std::size_t> rows) {
  Sequence seq(x.steps(), rows.size(), x.sensors());
  for (std::size_t b = 0; b < rows.size(); ++b) {
    SCWC_REQUIRE(rows[b] < x.trials(), "from_tensor: trial index out of range");
    for (std::size_t t = 0; t < x.steps(); ++t) {
      auto dst = seq.steps_[t].row(b);
      for (std::size_t f = 0; f < x.sensors(); ++f) {
        dst[f] = x(rows[b], t, f);
      }
    }
  }
  return seq;
}

Sequence Sequence::concat_features(const Sequence& a, const Sequence& b) {
  SCWC_REQUIRE(a.steps() == b.steps() && a.batch() == b.batch(),
               "concat_features: shape mismatch");
  Sequence out(a.steps(), a.batch(), a.features() + b.features());
  for (std::size_t t = 0; t < a.steps(); ++t) {
    for (std::size_t r = 0; r < a.batch(); ++r) {
      auto dst = out.steps_[t].row(r);
      const auto sa = a[t].row(r);
      const auto sb = b[t].row(r);
      std::copy(sa.begin(), sa.end(), dst.begin());
      std::copy(sb.begin(), sb.end(),
                dst.begin() + static_cast<std::ptrdiff_t>(sa.size()));
    }
  }
  return out;
}

Sequence Sequence::zeros_like() const {
  return Sequence(steps(), batch(), features());
}

}  // namespace scwc::nn
