// Learning-rate schedules.
//
// Section V-A: "a cyclical learning rate scheduler was used with cosine
// annealing as it has been shown to drastically improve convergence"
// (Smith, WACV 2017 + cosine warm restarts). CyclicalCosineLr anneals from
// max_lr to min_lr over one cycle with a cosine shape, then restarts, with
// an optional per-cycle decay of the peak.
#pragma once

#include <cstddef>

namespace scwc::nn {

/// Cosine-annealed cyclical learning rate with warm restarts.
class CyclicalCosineLr {
 public:
  /// `cycle_steps` is the period in optimisation steps; the peak is
  /// multiplied by `peak_decay` after every restart.
  CyclicalCosineLr(double max_lr, double min_lr, std::size_t cycle_steps,
                   double peak_decay = 1.0);

  /// Learning rate for 0-based step `step`.
  [[nodiscard]] double at(std::size_t step) const;

  /// Convenience: rate for the next step (internal counter).
  double next();

  [[nodiscard]] double max_lr() const noexcept { return max_lr_; }
  [[nodiscard]] double min_lr() const noexcept { return min_lr_; }
  [[nodiscard]] std::size_t cycle_steps() const noexcept {
    return cycle_steps_;
  }

 private:
  double max_lr_;
  double min_lr_;
  std::size_t cycle_steps_;
  double peak_decay_;
  std::size_t counter_ = 0;
};

}  // namespace scwc::nn
