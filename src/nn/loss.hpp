// Log-softmax + negative log-likelihood, fused.
//
// The paper's head "appl[ies] a log-softmax transform on the output vector
// … [and] take[s] the negative log-likelihood loss"; fusing the two gives
// the numerically stable logits gradient (softmax(x) - onehot(y)) / batch.
#pragma once

#include <span>

#include "linalg/matrix.hpp"

namespace scwc::nn {

/// Result of a loss evaluation.
struct LossResult {
  double loss = 0.0;             ///< mean NLL over the batch
  linalg::Matrix dlogits;        ///< gradient w.r.t. the raw logits
  std::vector<int> predictions;  ///< argmax class per row
};

/// Computes mean NLL of log-softmax(logits) against `targets`, plus the
/// gradient and hard predictions in one pass.
LossResult softmax_nll(const linalg::Matrix& logits,
                       std::span<const int> targets);

/// Log-softmax of each row (exposed for tests and inference probing).
linalg::Matrix log_softmax(const linalg::Matrix& logits);

}  // namespace scwc::nn
