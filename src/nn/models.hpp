// The paper's RNN baselines (Section V), as trainable models.
//
// BiLSTM head (V-A): input → (stacked) bidirectional LSTM → concatenation
// of the two directions' final states → FC(2h → T) → Dropout(0.5) →
// LeakyReLU → FC(T → classes) → log-softmax/NLL (fused in the loss).
//
// CNN-LSTM (V-B): two 1-D conv layers sandwiching a max-pool in front of
// the same BiLSTM head; stride/kernel choices shorten the sequence ~8×
// (or less, for the "small kernel" variant).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"
#include "nn/sequence.hpp"

namespace scwc::nn {

/// Per-timestep dropout over a sequence (fresh mask per step).
class SequenceDropout {
 public:
  SequenceDropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {}
  [[nodiscard]] Sequence forward(const Sequence& x, bool train);
  [[nodiscard]] Sequence backward(const Sequence& dout) const;

 private:
  double p_;
  Rng rng_;
  std::vector<linalg::Matrix> masks_;
};

/// Per-timestep LeakyReLU over a sequence.
class SequenceLeakyRelu {
 public:
  explicit SequenceLeakyRelu(double slope = 0.01) : slope_(slope) {}
  [[nodiscard]] Sequence forward(const Sequence& x);
  [[nodiscard]] Sequence backward(const Sequence& dout) const;

 private:
  double slope_;
  Sequence cached_input_;
};

/// Configuration covering every Table-VI row.
struct RnnModelConfig {
  std::size_t input_features = 7;
  std::size_t seq_len = 540;       ///< steps fed to the model
  std::size_t hidden = 128;
  std::size_t lstm_layers = 1;     ///< 1 or 2 (stacked, dropout between)
  std::size_t num_classes = 26;
  double dropout = 0.5;

  bool use_cnn = false;            ///< prepend the conv front end
  std::size_t conv_channels = 32;  ///< channels of both conv layers
  std::size_t conv1_kernel = 7;
  std::size_t conv1_stride = 2;
  std::size_t pool = 2;
  std::size_t conv2_kernel = 5;
  std::size_t conv2_stride = 2;

  std::uint64_t seed = 20220606;

  /// The "small kernel and step size" CNN-LSTM variant of Section V-B.
  void apply_small_kernel() {
    conv1_kernel = 3;
    conv1_stride = 1;
    conv2_kernel = 3;
    conv2_stride = 1;
  }
};

/// Trainable sequence classifier implementing both Table-VI families.
class SequenceClassifier final : public Parametrized {
 public:
  explicit SequenceClassifier(const RnnModelConfig& config);

  /// (T × B × features) → logits (B × classes). `train` enables dropout.
  [[nodiscard]] linalg::Matrix forward(const Sequence& x, bool train);

  /// Backpropagates dL/dlogits through the whole stack, accumulating
  /// parameter gradients. Must follow a forward() with train == true.
  void backward(const linalg::Matrix& dlogits);

  void collect_params(std::vector<ParamRef>& out) override;

  /// Display name matching the paper's Table VI rows, e.g.
  /// "LSTM (h=128)" or "CNN-LSTM (h=512, small kernel)".
  [[nodiscard]] std::string display_name() const;

  [[nodiscard]] const RnnModelConfig& config() const noexcept {
    return config_;
  }
  /// Sequence length that actually reaches the LSTM (post conv/pool).
  [[nodiscard]] std::size_t lstm_steps() const noexcept { return lstm_steps_; }

 private:
  RnnModelConfig config_;
  std::size_t lstm_steps_;

  // Optional conv front end.
  std::unique_ptr<Conv1d> conv1_;
  std::unique_ptr<SequenceLeakyRelu> conv1_act_;
  std::unique_ptr<MaxPool1d> pool_;
  std::unique_ptr<Conv1d> conv2_;
  std::unique_ptr<SequenceLeakyRelu> conv2_act_;

  // Recurrent trunk.
  std::vector<std::unique_ptr<BiLstm>> lstms_;
  std::vector<std::unique_ptr<SequenceDropout>> lstm_dropouts_;

  // Head.
  std::unique_ptr<Dense> fc1_;
  std::unique_ptr<Dropout> head_dropout_;
  std::unique_ptr<LeakyRelu> head_act_;
  std::unique_ptr<Dense> fc2_;

  // Shapes cached by forward for the backward scatter.
  std::size_t last_batch_ = 0;
};

}  // namespace scwc::nn
