// Sequence activations: a batch of equal-length multivariate series stored
// time-major — Sequence[t] is a contiguous batch×features matrix, which is
// exactly the operand shape the batched LSTM/conv kernels multiply at each
// step.
#pragma once

#include <vector>

#include "data/tensor3.hpp"
#include "linalg/matrix.hpp"

namespace scwc::nn {

/// Time-major batch of sequences: steps_ matrices of (batch × features).
class Sequence {
 public:
  Sequence() = default;
  Sequence(std::size_t steps, std::size_t batch, std::size_t features);

  [[nodiscard]] std::size_t steps() const noexcept { return steps_.size(); }
  [[nodiscard]] std::size_t batch() const noexcept {
    return steps_.empty() ? 0 : steps_.front().rows();
  }
  [[nodiscard]] std::size_t features() const noexcept {
    return steps_.empty() ? 0 : steps_.front().cols();
  }

  [[nodiscard]] linalg::Matrix& operator[](std::size_t t) noexcept {
    return steps_[t];
  }
  [[nodiscard]] const linalg::Matrix& operator[](std::size_t t) const noexcept {
    return steps_[t];
  }

  /// Builds a time-major sequence from `rows` of a (trials × T × F) tensor.
  static Sequence from_tensor(const data::Tensor3& x,
                              std::span<const std::size_t> rows);

  /// Concatenates two sequences feature-wise (same steps and batch).
  static Sequence concat_features(const Sequence& a, const Sequence& b);

  /// Same shape, all zeros.
  [[nodiscard]] Sequence zeros_like() const;

 private:
  std::vector<linalg::Matrix> steps_;
};

}  // namespace scwc::nn
