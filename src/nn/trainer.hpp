// Mini-batch trainer with early stopping — the training protocol of
// Section V: Adam + cyclical cosine learning rate, dropout at train time,
// "trained for [max_epochs] epochs, early stopping if the validation
// accuracy did not improve over [patience] epochs", reporting the best
// validation accuracy.
#pragma once

#include <cstdint>

#include "data/tensor3.hpp"
#include "nn/models.hpp"
#include "nn/optimizer.hpp"
#include "nn/scheduler.hpp"

namespace scwc::nn {

/// Training-loop hyper-parameters.
struct TrainerConfig {
  std::size_t max_epochs = 1000;
  std::size_t patience = 100;      ///< epochs without val improvement
  std::size_t batch_size = 64;
  double max_lr = 3e-3;
  double min_lr = 1e-4;
  std::size_t cycle_epochs = 4;    ///< cosine cycle length
  double clip_norm = 5.0;          ///< global gradient clipping
  std::uint64_t seed = 99;
  bool restore_best = true;        ///< load best-val weights after training
  bool verbose = false;
};

/// Outcome of one training run.
struct TrainResult {
  double best_val_accuracy = 0.0;
  std::size_t best_epoch = 0;
  std::size_t epochs_run = 0;
  std::vector<double> train_loss;    ///< mean loss per epoch
  std::vector<double> val_accuracy;  ///< accuracy per epoch
};

/// Runs the Section-V protocol on a SequenceClassifier.
class Trainer {
 public:
  explicit Trainer(TrainerConfig config) : config_(config) {}

  /// Trains on (x_train, y_train), early-stops on (x_val, y_val).
  /// Inputs must already be standardised (the paper scales before the RNN).
  TrainResult fit(SequenceClassifier& model, const data::Tensor3& x_train,
                  std::span<const int> y_train, const data::Tensor3& x_val,
                  std::span<const int> y_val);

  /// Batch prediction (eval mode).
  static std::vector<int> predict(SequenceClassifier& model,
                                  const data::Tensor3& x,
                                  std::size_t batch_size = 128);

  /// Accuracy of the model on a labelled tensor.
  static double evaluate(SequenceClassifier& model, const data::Tensor3& x,
                         std::span<const int> y,
                         std::size_t batch_size = 128);

 private:
  TrainerConfig config_;
};

}  // namespace scwc::nn
