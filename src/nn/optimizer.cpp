#include "nn/optimizer.hpp"

#include <cmath>

namespace scwc::nn {

double Optimizer::clip_grad_norm(double max_norm) {
  double sq = 0.0;
  for (const auto& p : params_) {
    for (const double g : p.grad) sq += g * g;
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm && norm > 0.0) {
    const double scale = max_norm / norm;
    for (auto& p : params_) {
      for (double& g : p.grad) g *= scale;
    }
  }
  return norm;
}

Sgd::Sgd(std::vector<ParamRef> params, double momentum)
    : Optimizer(std::move(params)), momentum_(momentum) {
  velocity_.reserve(params_.size());
  for (const auto& p : params_) {
    velocity_.emplace_back(p.value.size(), 0.0);
  }
}

void Sgd::step(double learning_rate) {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& vel = velocity_[i];
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      vel[k] = momentum_ * vel[k] - learning_rate * p.grad[k];
      p.value[k] += vel[k];
    }
  }
}

Adam::Adam(std::vector<ParamRef> params, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)), beta1_(beta1), beta2_(beta2), eps_(eps) {
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (const auto& p : params_) {
    m_.emplace_back(p.value.size(), 0.0);
    v_.emplace_back(p.value.size(), 0.0);
  }
}

void Adam::step(double learning_rate) {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    auto& m = m_[i];
    auto& v = v_[i];
    for (std::size_t k = 0; k < p.value.size(); ++k) {
      const double g = p.grad[k];
      m[k] = beta1_ * m[k] + (1.0 - beta1_) * g;
      v[k] = beta2_ * v[k] + (1.0 - beta2_) * g * g;
      const double m_hat = m[k] / bc1;
      const double v_hat = v[k] / bc2;
      p.value[k] -= learning_rate * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

}  // namespace scwc::nn
