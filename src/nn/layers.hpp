// Feed-forward layers: Dense, Dropout, LeakyReLU.
//
// Layers are explicit forward/backward pairs (no tape): forward() caches
// whatever the matching backward() needs, so each layer instance serves one
// position in one model. This is the standard formulation for small,
// fixed-architecture training loops and keeps the math auditable.
#pragma once

#include <cstdint>

#include "linalg/matrix.hpp"
#include "nn/param.hpp"

namespace scwc::nn {

/// Fully-connected layer: y = xW + b, x is (batch × in), W (in × out).
class Dense final : public Parametrized {
 public:
  Dense(std::size_t in_features, std::size_t out_features, Rng& rng);

  [[nodiscard]] linalg::Matrix forward(const linalg::Matrix& x);
  /// Returns dL/dx; accumulates dL/dW, dL/db into the gradient buffers.
  [[nodiscard]] linalg::Matrix backward(const linalg::Matrix& dout);

  void collect_params(std::vector<ParamRef>& out) override;

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }
  [[nodiscard]] linalg::Matrix& weight() noexcept { return w_; }
  [[nodiscard]] linalg::Vector& bias() noexcept { return b_; }

 private:
  std::size_t in_;
  std::size_t out_;
  linalg::Matrix w_;
  linalg::Matrix dw_;
  linalg::Vector b_;
  linalg::Vector db_;
  linalg::Matrix cached_input_;
};

/// Inverted dropout: scales kept activations by 1/(1-p) at train time so
/// eval-time forward is the identity.
class Dropout {
 public:
  Dropout(double p, std::uint64_t seed) : p_(p), rng_(seed) {}

  [[nodiscard]] linalg::Matrix forward(const linalg::Matrix& x, bool train);
  [[nodiscard]] linalg::Matrix backward(const linalg::Matrix& dout) const;

  [[nodiscard]] double probability() const noexcept { return p_; }

 private:
  double p_;
  Rng rng_;
  linalg::Matrix mask_;
};

/// Leaky rectified linear unit with fixed negative slope (paper's default).
class LeakyRelu {
 public:
  explicit LeakyRelu(double negative_slope = 0.01) : slope_(negative_slope) {}

  [[nodiscard]] linalg::Matrix forward(const linalg::Matrix& x);
  [[nodiscard]] linalg::Matrix backward(const linalg::Matrix& dout) const;

 private:
  double slope_;
  linalg::Matrix cached_input_;
};

}  // namespace scwc::nn
