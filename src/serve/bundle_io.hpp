// Bundle persistence: serialise a ModelBundle so a serving process can load
// a version without retraining (and roll between versions from disk).
//
// Format: little-endian binary, mirroring the RandomForest serialisation it
// embeds — magic, format version, bundle version string, guard config,
// fitted pipeline parameters (scaler, optional PCA basis), then the model
// tagged by Classifier::name(). Only RandomForest models are supported;
// other families serve from freshly trained in-process bundles.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "serve/model_registry.hpp"

namespace scwc::serve {

/// Writes `bundle` to a stream/file. Throws scwc::Error for model families
/// without a serialiser (anything but RandomForest) or on I/O failure.
void save_bundle(const ModelBundle& bundle, std::ostream& os);
void save_bundle_file(const ModelBundle& bundle, const std::string& path);

/// Reads a bundle back. Throws scwc::Error on bad magic, unsupported format
/// or model tag, truncation, or non-finite/ill-shaped parameters.
[[nodiscard]] std::shared_ptr<const ModelBundle> load_bundle(std::istream& is);
[[nodiscard]] std::shared_ptr<const ModelBundle> load_bundle_file(
    const std::string& path);

/// Failure-isolating hot swap: loads a bundle from the stream/file and
/// registers + activates it atomically — or, if the load fails for ANY
/// reason (typed parse error, I/O failure, allocation failure on a
/// corrupted length field), leaves the registry completely untouched,
/// counts scwc_serve_bundle_load_failures_total, and returns nullptr. A bad
/// bundle on disk can therefore never take down serving of the current one.
/// Returns the activated bundle on success.
std::shared_ptr<const ModelBundle> try_swap_from_stream(ModelRegistry& registry,
                                                        std::istream& is);
std::shared_ptr<const ModelBundle> try_swap_from_file(ModelRegistry& registry,
                                                      const std::string& path);

}  // namespace scwc::serve
