// Versioned model bundles with atomic hot-swap and rollback.
//
// A ModelBundle is everything one model version needs to serve: the fitted
// FeaturePipeline, the Classifier, and the GuardedClassifier wrapping both
// behind the quality gate. Bundles are immutable once registered and held
// by shared_ptr<const>, so a hot-swap is one pointer move: in-flight
// batches keep the bundle they captured at cut time and drain on the old
// version while new batches pick up the new one — no request ever sees a
// half-swapped model.
#pragma once

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "data/tensor3.hpp"
#include "ml/classifier.hpp"
#include "ml/random_forest.hpp"
#include "obs/metrics.hpp"
#include "preprocess/pipeline.hpp"
#include "robust/guarded_classifier.hpp"

namespace scwc::serve {

/// One immutable serving unit: pipeline + model + guard. Non-copyable and
/// non-movable because the guard holds references into the other members —
/// always heap-allocate through std::make_shared.
class ModelBundle {
 public:
  /// Takes ownership of fitted parts. `guard_config`'s geometry must match
  /// the pipeline's fitted geometry.
  ModelBundle(std::string version, preprocess::FeaturePipeline pipeline,
              std::unique_ptr<ml::Classifier> model,
              robust::GuardedConfig guard_config);

  ModelBundle(const ModelBundle&) = delete;
  ModelBundle& operator=(const ModelBundle&) = delete;

  [[nodiscard]] const std::string& version() const noexcept {
    return version_;
  }
  [[nodiscard]] const robust::GuardedClassifier& guard() const noexcept {
    return guard_;
  }
  [[nodiscard]] const preprocess::FeaturePipeline& pipeline() const noexcept {
    return pipeline_;
  }
  [[nodiscard]] const ml::Classifier& model() const noexcept {
    return *model_;
  }
  [[nodiscard]] const robust::GuardedConfig& guard_config() const noexcept {
    return guard_.config();
  }

 private:
  std::string version_;
  preprocess::FeaturePipeline pipeline_;
  std::unique_ptr<ml::Classifier> model_;
  robust::GuardedClassifier guard_;  // references pipeline_/model_: keep last
};

/// Spec for training a fresh RandomForest bundle (the registry's built-in
/// recipe; other model families register hand-built bundles directly).
struct RfBundleSpec {
  std::string version;
  preprocess::FeaturePipelineConfig pipeline;
  ml::RandomForestConfig forest;
  double min_quality = 0.5;
  robust::ImputationConfig imputation;
};

/// Fits pipeline + forest on a training tensor and wraps them as a bundle.
/// The guard's geometry comes from the tensor; the fallback label is the
/// training majority class.
[[nodiscard]] std::shared_ptr<const ModelBundle> train_rf_bundle(
    const RfBundleSpec& spec, const data::Tensor3& x_train,
    std::span<const int> y_train);

/// Thread-safe directory of bundles with one "current" serving version.
class ModelRegistry {
 public:
  ModelRegistry();

  /// Adds a bundle (version must be unique); when `activate` is set, makes
  /// it current and records the previous current version for rollback().
  void register_bundle(std::shared_ptr<const ModelBundle> bundle,
                       bool activate = true);

  /// The serving bundle, or nullptr when none is active. Callers capture
  /// this once per BATCH (not per request) so every window in a batch is
  /// answered by the same version.
  [[nodiscard]] std::shared_ptr<const ModelBundle> current() const;

  /// Looks up a registered version; nullptr when unknown.
  [[nodiscard]] std::shared_ptr<const ModelBundle> get(
      const std::string& version) const;

  /// Atomically switches serving to `version`. Throws scwc::Error on an
  /// unknown version. No-op (no history entry) when already current.
  void activate(const std::string& version);

  /// Reverts to the previously active version and returns it; returns
  /// nullptr (and changes nothing) when there is no earlier activation.
  std::shared_ptr<const ModelBundle> rollback();

  /// Registered versions, sorted.
  [[nodiscard]] std::vector<std::string> versions() const;

 private:
  mutable Mutex mutex_{"serve.registry"};
  std::map<std::string, std::shared_ptr<const ModelBundle>> bundles_
      SCWC_GUARDED_BY(mutex_);
  std::shared_ptr<const ModelBundle> current_ SCWC_GUARDED_BY(mutex_);
  /// Versions that were current before each activate(), oldest first.
  std::vector<std::string> activation_history_ SCWC_GUARDED_BY(mutex_);

  obs::CounterHandle obs_swaps_;
  obs::CounterHandle obs_rollbacks_;
  obs::GaugeHandle obs_bundles_;
};

}  // namespace scwc::serve
