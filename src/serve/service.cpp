#include "serve/service.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/request_trace.hpp"
#include "obs/trace.hpp"
#include "serve/audit.hpp"
#include "serve/chaos.hpp"

namespace scwc::serve {

using obs::seconds_between;

namespace {

constexpr auto kNoDeadline = std::chrono::steady_clock::time_point::max();

/// Absolute deadline for a request arriving now under `budget_s` (0 = none).
std::chrono::steady_clock::time_point deadline_from(double budget_s) {
  if (budget_s <= 0.0) return kNoDeadline;
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(budget_s));
}

/// Version string reported by abstain-only degraded answers, which no real
/// bundle served.
const char* const kDegradedVersion = "(degraded)";

}  // namespace

ClassificationService::ClassificationService(ModelRegistry& registry,
                                             ServiceConfig config,
                                             ThreadPool* pool)
    : registry_(registry),
      config_(config),
      pool_(pool != nullptr ? *pool : ThreadPool::global()),
      assembler_(config.assembler),
      admission_(pool_, config.admission),
      tracer_(config.trace) {
  auto& reg = obs::MetricsRegistry::global();
  obs_requests_ = reg.counter("scwc_serve_requests_total");
  obs_request_seconds_ = reg.histogram("scwc_serve_request_seconds");
  obs_request_seconds_rolling_ =
      reg.rolling_histogram("scwc_serve_request_seconds_rolling");
  obs_batch_exec_seconds_ = reg.histogram("scwc_serve_batch_exec_seconds");
  obs_deadline_missed_ = reg.counter("scwc_serve_deadline_missed_total");
  obs_degraded_ = reg.counter("scwc_serve_degraded_total");
  obs_auto_rollbacks_ = reg.counter("scwc_serve_auto_rollbacks_total");
  if (config_.health.enabled) {
    monitor_ = std::make_unique<HealthMonitor>(config_.health);
    chain_ = std::make_unique<FallbackChain>(registry_, config_.health);
  }
  MicroBatcherConfig batcher_config = config_.batcher;
  batcher_config.chaos = config_.chaos;
  batcher_ = std::make_unique<MicroBatcher>(
      batcher_config,
      [this](std::vector<BatchRequest>&& batch) { run_batch(std::move(batch)); },
      [this](BatchRequest&& request) {
        // Deadline passed while the request sat in the batcher queue.
        shed(request, RejectReason::kDeadlineExceeded);
      });
}

ClassificationService::~ClassificationService() { stop(); }

void ClassificationService::note_verdict(
    const BatchRequest& request, const ServeResult& result,
    std::chrono::steady_clock::time_point done) {
  const bool want_trace = request.trace_sampled;
  const bool want_audit = config_.audit != nullptr;
  if (!want_trace && !want_audit) return;

  std::string event;
  if (!result.accepted) {
    event = "shed";
  } else if (result.prediction.abstained) {
    event = "abstain";
  } else {
    event = "answer";
  }

  if (want_trace) {
    obs::RequestTraceRecord rec;
    rec.trace_id = request.trace_id;
    rec.job_id = request.job_id;
    rec.start_s = tracer_.since_epoch(request.submitted);
    rec.phases = result.phases;
    rec.outcome = event;
    if (event == "shed") {
      rec.outcome += std::string(":") + reject_reason_name(result.reject_reason);
    } else if (event == "abstain") {
      rec.outcome +=
          std::string(":") + robust::abstain_reason_name(result.prediction.reason);
    }
    rec.model_version = result.model_version;
    rec.batch_size = result.batch_size;
    rec.degrade_level = result.degrade_level;
    tracer_.record(std::move(rec));
  }

  if (want_audit) {
    AuditRecord rec;
    rec.trace_id = request.trace_id;
    rec.job_id = request.job_id;
    rec.event = event;
    rec.model_version = result.model_version;
    rec.label = result.prediction.label;
    rec.degrade_level = result.degrade_level;
    rec.batch_size = result.batch_size;
    if (event == "abstain") {
      rec.abstain_reason = robust::abstain_reason_name(result.prediction.reason);
    }
    if (event == "shed") {
      rec.reject_reason = reject_reason_name(result.reject_reason);
    } else {
      rec.quality = result.prediction.report.quality();
      rec.missing_values = result.prediction.report.missing_values;
      rec.repaired_values = result.prediction.report.repaired_values;
    }
    rec.phases = result.phases;
    if (request.deadline != kNoDeadline) {
      rec.deadline_slack_s =
          obs::signed_seconds_between(done, request.deadline);
    }
    config_.audit->log(rec);
  }
}

void ClassificationService::shed(BatchRequest& request, RejectReason reason) {
  admission_.count_shed(reason);
  if (reason == RejectReason::kDeadlineExceeded) obs_deadline_missed_.inc();
  if (monitor_ != nullptr) monitor_->record_shed(reason);
  const auto now = std::chrono::steady_clock::now();
  ServeResult result;
  result.accepted = false;
  result.reject_reason = reason;
  result.total_latency_s = seconds_between(request.enqueued, now);
  result.trace_id = request.trace_id;
  result.phases.admission_s = seconds_between(request.submitted, request.enqueued);
  result.phases.queue_s = seconds_between(request.enqueued, now);
  result.phases.total_s = seconds_between(request.submitted, now);
  note_verdict(request, result, now);
  request.promise.set_value(std::move(result));
}

std::future<ServeResult> ClassificationService::submit(
    std::vector<double> window, std::size_t steps, std::size_t sensors) {
  return submit_traced(std::move(window), steps, sensors,
                       deadline_from(config_.default_deadline_s), -1);
}

std::future<ServeResult> ClassificationService::submit(
    std::vector<double> window, std::size_t steps, std::size_t sensors,
    std::chrono::steady_clock::time_point deadline) {
  return submit_traced(std::move(window), steps, sensors, deadline, -1);
}

std::future<ServeResult> ClassificationService::submit_with_trace(
    std::vector<double> window, std::size_t steps, std::size_t sensors,
    std::chrono::steady_clock::time_point deadline, std::uint64_t trace_id,
    bool trace_sampled) {
  return submit_traced(std::move(window), steps, sensors, deadline, -1,
                       trace_id, trace_sampled);
}

std::future<ServeResult> ClassificationService::submit_traced(
    std::vector<double> window, std::size_t steps, std::size_t sensors,
    std::chrono::steady_clock::time_point deadline, std::int64_t job_id,
    std::uint64_t trace_id, bool trace_sampled) {
  obs_requests_.inc();
  BatchRequest request;
  request.window = std::move(window);
  request.steps = steps;
  request.sensors = sensors;
  if (trace_id != 0) {
    // Adopted (router-issued) identity: the caller's sampler already
    // decided; our own seeded sampler stays out of the picture so router
    // and worker keep records for exactly the same requests.
    request.trace_id = trace_id;
    request.trace_sampled = trace_sampled;
  } else {
    request.trace_id = tracer_.begin_trace();
    request.trace_sampled = tracer_.sampled(request.trace_id);
  }
  request.job_id = job_id;
  request.submitted = std::chrono::steady_clock::now();
  // The batcher re-stamps `enqueued` on acceptance; until then both stamps
  // coincide so entry-time sheds report zero-width phases.
  request.enqueued = request.submitted;
  request.deadline = deadline;
  std::future<ServeResult> future = request.promise.get_future();

  RejectReason reason = RejectReason::kNone;
  if (request.deadline <= request.enqueued) {
    // Dead on arrival — don't waste queue space on it.
    reason = RejectReason::kDeadlineExceeded;
  } else if (registry_.current() == nullptr &&
             (chain_ == nullptr || chain_->depth() == 0)) {
    reason = RejectReason::kNoModel;
  } else {
    reason = admission_.admit_request(batcher_->pending());
  }
  if (reason == RejectReason::kNone && !batcher_->submit(std::move(request))) {
    reason = RejectReason::kShutdown;  // batcher stopped between checks
    // submit() moved-from only on success; on false the request is intact.
  }
  if (reason != RejectReason::kNone) {
    shed(request, reason);
  }
  return future;
}

std::vector<PendingWindow> ClassificationService::ingest(
    std::int64_t job_id, std::span<const double> sample) {
  return ingest_block(job_id, sample);
}

std::vector<PendingWindow> ClassificationService::ingest_block(
    std::int64_t job_id, std::span<const double> block) {
  std::vector<AssembledWindow> closed = assembler_.push_block(job_id, block);
  std::vector<PendingWindow> out;
  out.reserve(closed.size());
  for (AssembledWindow& window : closed) {
    PendingWindow pending;
    pending.job_id = window.job_id;
    pending.start_step = window.start_step;
    pending.result = submit_traced(
        std::move(window.values), config_.assembler.window_steps,
        config_.assembler.sensors,
        deadline_from(config_.default_deadline_s), window.job_id);
    out.push_back(std::move(pending));
  }
  return out;
}

std::vector<PendingWindow> ClassificationService::finish_job(
    std::int64_t job_id) {
  std::vector<AssembledWindow> closed = assembler_.finish(job_id);
  std::vector<PendingWindow> out;
  out.reserve(closed.size());
  for (AssembledWindow& window : closed) {
    PendingWindow pending;
    pending.job_id = window.job_id;
    pending.start_step = window.start_step;
    pending.result = submit_traced(
        std::move(window.values), config_.assembler.window_steps,
        config_.assembler.sensors,
        deadline_from(config_.default_deadline_s), window.job_id);
    out.push_back(std::move(pending));
  }
  return out;
}

void ClassificationService::evaluate_health(
    std::chrono::steady_clock::time_point now) {
  if (monitor_ == nullptr) return;
  const HealthStats stats = monitor_->stats();
  if (stats.model_errors > config_.health.max_model_errors) {
    // The BUNDLE is broken (model exceptions / malformed results), not the
    // cluster: the previous version is the better answer than degradation.
    const std::shared_ptr<const ModelBundle> restored = registry_.rollback();
    monitor_->reset();
    if (restored != nullptr) {
      obs_auto_rollbacks_.inc();
      SCWC_LOG_WARN("serve auto-rollback: " << stats.model_errors
                                            << " model errors, restored "
                                            << restored->version());
    } else {
      // Nothing to roll back to — treat it as a health incident instead.
      chain_->on_unhealthy(now);
    }
    return;
  }
  std::string why;
  if (chain_->state() != BreakerState::kOpen && monitor_->unhealthy(&why)) {
    SCWC_LOG_WARN("serve unhealthy: " << why);
    chain_->on_unhealthy(now);
    // Start the next verdict from post-transition evidence only.
    monitor_->reset();
  }
}

void ClassificationService::answer_degraded(
    std::vector<BatchRequest>& batch) {
  const auto now = std::chrono::steady_clock::now();
  for (BatchRequest& request : batch) {
    obs_degraded_.inc();
    ServeResult result;
    result.accepted = true;
    result.model_version = kDegradedVersion;
    result.batch_size = batch.size();
    result.degrade_level = 2;
    result.prediction.label = robust::GuardedConfig::kNoLabel;
    result.prediction.abstained = true;
    result.prediction.reason = robust::AbstainReason::kDegraded;
    result.queue_delay_s = seconds_between(request.enqueued, now);
    result.total_latency_s =
        seconds_between(request.enqueued, std::chrono::steady_clock::now());
    result.trace_id = request.trace_id;
    result.phases.admission_s =
        seconds_between(request.submitted, request.enqueued);
    result.phases.queue_s = seconds_between(request.enqueued, now);
    result.phases.total_s = seconds_between(request.submitted, now);
    note_verdict(request, result, now);
    request.promise.set_value(std::move(result));
  }
}

void ClassificationService::run_batch(std::vector<BatchRequest>&& batch) {
  if (batch.empty()) return;
  const obs::TraceSpan span("serve.flush");
  const auto now = std::chrono::steady_clock::now();

  evaluate_health(now);

  // Route the whole batch through the breaker (or straight to the current
  // bundle when health is off). The bundle is captured ONCE here, keeping
  // hot-swap atomic per batch.
  Route route;
  if (chain_ != nullptr) {
    route = chain_->route(now);
  } else {
    route.bundle = registry_.current();
  }

  if (route.level >= 2) {
    // Abstain-only degraded mode: answer inline, instantly — the whole
    // point is to keep responding while the model path is unsafe.
    answer_degraded(batch);
    return;
  }
  if (route.bundle == nullptr) {
    for (BatchRequest& request : batch) shed(request, RejectReason::kNoModel);
    if (route.probe) chain_->on_probe_outcome(false, now);
    return;
  }

  if (admission_.closed()) {
    // Draining after stop(): the pool may already be needed elsewhere and
    // new dispatches would be refused — answer the queued requests inline.
    execute_batch(route, batch, now);
    return;
  }

  if (config_.chaos != nullptr) {
    // Chaos dispatch hook: may delay (sleeps the flusher — exactly the
    // stalled-dispatch failure mode) or drop the batch outright.
    if (config_.chaos->on_batch_dispatch() == BatchFate::kDrop) {
      for (BatchRequest& request : batch) {
        shed(request, RejectReason::kInternal);
      }
      if (route.probe) {
        chain_->on_probe_outcome(false, std::chrono::steady_clock::now());
      }
      return;
    }
  }

  // BatchRequest is move-only (promise) but std::function requires a
  // copyable callable — hand the batch over through a shared_ptr.
  auto shared =
      std::make_shared<std::vector<BatchRequest>>(std::move(batch));
  {
    const scwc::LockGuard lock(inflight_mutex_);
    ++inflight_batches_;
  }
  // The notify happens UNDER inflight_mutex_: stop()'s waiter re-acquires
  // the mutex before returning, so it cannot observe inflight == 0 and let
  // the destructor tear down inflight_cv_ while notify_all() is still
  // executing on this thread (cv-destruction race TSan catches otherwise).
  const RejectReason reason = admission_.dispatch([this, route, shared, now] {
    execute_batch(route, *shared, now);
    const scwc::LockGuard lock(inflight_mutex_);
    --inflight_batches_;
    inflight_cv_.notify_all();
  });
  if (reason != RejectReason::kNone) {
    {
      const scwc::LockGuard lock(inflight_mutex_);
      --inflight_batches_;
      inflight_cv_.notify_all();
    }
    for (BatchRequest& request : *shared) shed(request, reason);
    if (route.probe) {
      chain_->on_probe_outcome(false, std::chrono::steady_clock::now());
    }
  }
}

void ClassificationService::execute_batch(
    const Route& route, std::vector<BatchRequest>& batch,
    std::chrono::steady_clock::time_point cut) {
  const std::shared_ptr<const ModelBundle>& bundle = route.bundle;
  std::size_t model_errors = 0;
  try {
    const obs::TraceSpan span("serve.predict_batch");
    if (config_.chaos != nullptr) config_.chaos->on_predict_start();
    const auto exec_start = std::chrono::steady_clock::now();
    const robust::GuardedConfig& guard = bundle->guard_config();
    const std::size_t steps = guard.window_steps;
    const std::size_t sensors = guard.sensors;

    // Pack every well-shaped request into one tensor; odd-geometry requests
    // take the single-window path (and abstain there with kShape).
    std::vector<std::size_t> packed_index;
    packed_index.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const BatchRequest& r = batch[i];
      if (r.steps == steps && r.sensors == sensors &&
          r.window.size() == steps * sensors) {
        packed_index.push_back(i);
      }
    }
    std::vector<robust::GuardedPrediction> packed_out;
    robust::BatchPhaseTimings batch_timings;
    if (!packed_index.empty()) {
      data::Tensor3 windows(packed_index.size(), steps, sensors);
      for (std::size_t j = 0; j < packed_index.size(); ++j) {
        const std::vector<double>& src = batch[packed_index[j]].window;
        std::copy(src.begin(), src.end(), windows.trial(j).begin());
      }
      packed_out = bundle->guard().classify_batch(windows, &batch_timings);
    }

    std::size_t next_packed = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      BatchRequest& request = batch[i];
      ServeResult result;
      result.accepted = true;
      result.model_version = bundle->version();
      result.batch_size = batch.size();
      result.degrade_level = route.level;
      result.queue_delay_s = seconds_between(request.enqueued, exec_start);
      result.trace_id = request.trace_id;
      result.phases.admission_s =
          seconds_between(request.submitted, request.enqueued);
      result.phases.queue_s = seconds_between(request.enqueued, cut);
      result.phases.batch_wait_s = seconds_between(cut, exec_start);
      // Transform/predict are batch-level stages — every request of the
      // batch spent that wall time in them, so each carries the full value.
      result.phases.transform_s = batch_timings.transform_s;
      result.phases.predict_s = batch_timings.predict_s;
      if (next_packed < packed_index.size() &&
          packed_index[next_packed] == i) {
        result.prediction = std::move(packed_out[next_packed]);
        ++next_packed;
      } else {
        result.prediction = bundle->guard().classify(
            request.window, request.steps, request.sensors);
      }
      const auto done = std::chrono::steady_clock::now();
      if (result.prediction.reason == robust::AbstainReason::kModelError) {
        ++model_errors;
      }
      // Post-predict deadline checkpoint: a late answer is a stale answer —
      // the caller promised its own consumer a bound, so report the miss
      // instead of pretending the result arrived in time.
      if (request.deadline <= done) {
        shed(request, RejectReason::kDeadlineExceeded);
        continue;
      }
      result.total_latency_s = seconds_between(request.enqueued, done);
      result.phases.total_s = seconds_between(request.submitted, done);
      obs_request_seconds_.observe(result.total_latency_s);
      obs_request_seconds_rolling_.observe(result.total_latency_s);
      // Feed the SLO sensor from FULL-PATH traffic only (probes judge
      // themselves; degraded answers would poison the abstain rate).
      if (monitor_ != nullptr && route.level == 0 && !route.probe) {
        monitor_->record_accepted(
            result.total_latency_s, result.prediction.abstained,
            result.prediction.reason == robust::AbstainReason::kModelError);
      }
      note_verdict(request, result, done);
      request.promise.set_value(std::move(result));
    }
    const auto exec_s = seconds_between(exec_start,
                                        std::chrono::steady_clock::now());
    obs_batch_exec_seconds_.observe(exec_s);
    if (route.probe) {
      // The probe is healthy when the model path worked and the batch
      // cleared the latency SLO — the same evidence the monitor trips on.
      const bool healthy =
          model_errors == 0 && exec_s <= config_.health.max_p99_s;
      chain_->on_probe_outcome(healthy, std::chrono::steady_clock::now());
    }
  } catch (...) {
    // Defensive net: the guard never throws, but if anything here does
    // (bad_alloc, a broken custom Classifier), no promise may be left
    // unresolved — that future would hang a client forever.
    for (BatchRequest& request : batch) {
      try {
        shed(request, RejectReason::kInternal);
      } catch (const std::future_error&) {
        // already resolved before the throw — exactly what we want
      }
    }
    if (route.probe) {
      chain_->on_probe_outcome(false, std::chrono::steady_clock::now());
    }
    SCWC_LOG_ERROR("serve batch execution failed; shed with kInternal");
  }
}

void ClassificationService::stop() {
  admission_.close();
  // Flushes every queued batch through run_batch (inline-drain path above),
  // then joins the flusher. Requests whose deadline expired in the queue
  // are resolved by the batcher's expired handler during the drain; every
  // other queued request is answered inline — nothing is left pending.
  batcher_->stop();
  // Wait out batches already handed to the pool. Explicit wait loop: the
  // analysis checks this form (it cannot see into predicate lambdas).
  const scwc::LockGuard lock(inflight_mutex_);
  while (inflight_batches_ != 0) inflight_cv_.wait(inflight_mutex_);
}

}  // namespace scwc::serve
