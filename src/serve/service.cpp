#include "serve/service.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace scwc::serve {

namespace {

double seconds_since(std::chrono::steady_clock::time_point start,
                     std::chrono::steady_clock::time_point now) {
  return std::chrono::duration<double>(now - start).count();
}

}  // namespace

ClassificationService::ClassificationService(ModelRegistry& registry,
                                             ServiceConfig config,
                                             ThreadPool* pool)
    : registry_(registry),
      config_(config),
      pool_(pool != nullptr ? *pool : ThreadPool::global()),
      assembler_(config.assembler),
      admission_(pool_, config.admission) {
  auto& reg = obs::MetricsRegistry::global();
  obs_requests_ = reg.counter("scwc_serve_requests_total");
  obs_request_seconds_ = reg.histogram("scwc_serve_request_seconds");
  obs_batch_exec_seconds_ = reg.histogram("scwc_serve_batch_exec_seconds");
  batcher_ = std::make_unique<MicroBatcher>(
      config_.batcher,
      [this](std::vector<BatchRequest>&& batch) { run_batch(std::move(batch)); });
}

ClassificationService::~ClassificationService() { stop(); }

void ClassificationService::shed(BatchRequest& request, RejectReason reason) {
  admission_.count_shed(reason);
  ServeResult result;
  result.accepted = false;
  result.reject_reason = reason;
  result.total_latency_s =
      seconds_since(request.enqueued, std::chrono::steady_clock::now());
  request.promise.set_value(std::move(result));
}

std::future<ServeResult> ClassificationService::submit(
    std::vector<double> window, std::size_t steps, std::size_t sensors) {
  obs_requests_.inc();
  BatchRequest request;
  request.window = std::move(window);
  request.steps = steps;
  request.sensors = sensors;
  request.enqueued = std::chrono::steady_clock::now();
  std::future<ServeResult> future = request.promise.get_future();

  RejectReason reason = RejectReason::kNone;
  if (registry_.current() == nullptr) {
    reason = RejectReason::kNoModel;
  } else {
    reason = admission_.admit_request(batcher_->pending());
  }
  if (reason == RejectReason::kNone && !batcher_->submit(std::move(request))) {
    reason = RejectReason::kShutdown;  // batcher stopped between checks
    // submit() moved-from only on success; on false the request is intact.
  }
  if (reason != RejectReason::kNone) {
    shed(request, reason);
  }
  return future;
}

std::vector<PendingWindow> ClassificationService::ingest(
    std::int64_t job_id, std::span<const double> sample) {
  return ingest_block(job_id, sample);
}

std::vector<PendingWindow> ClassificationService::ingest_block(
    std::int64_t job_id, std::span<const double> block) {
  std::vector<AssembledWindow> closed = assembler_.push_block(job_id, block);
  std::vector<PendingWindow> out;
  out.reserve(closed.size());
  for (AssembledWindow& window : closed) {
    PendingWindow pending;
    pending.job_id = window.job_id;
    pending.start_step = window.start_step;
    pending.result =
        submit(std::move(window.values), config_.assembler.window_steps,
               config_.assembler.sensors);
    out.push_back(std::move(pending));
  }
  return out;
}

std::vector<PendingWindow> ClassificationService::finish_job(
    std::int64_t job_id) {
  std::vector<AssembledWindow> closed = assembler_.finish(job_id);
  std::vector<PendingWindow> out;
  out.reserve(closed.size());
  for (AssembledWindow& window : closed) {
    PendingWindow pending;
    pending.job_id = window.job_id;
    pending.start_step = window.start_step;
    pending.result =
        submit(std::move(window.values), config_.assembler.window_steps,
               config_.assembler.sensors);
    out.push_back(std::move(pending));
  }
  return out;
}

void ClassificationService::run_batch(std::vector<BatchRequest>&& batch) {
  if (batch.empty()) return;
  const obs::TraceSpan span("serve.flush");
  const std::shared_ptr<const ModelBundle> bundle = registry_.current();
  if (bundle == nullptr) {
    for (BatchRequest& request : batch) shed(request, RejectReason::kNoModel);
    return;
  }

  if (admission_.closed()) {
    // Draining after stop(): the pool may already be needed elsewhere and
    // new dispatches would be refused — answer the queued requests inline.
    execute_batch(bundle, batch);
    return;
  }

  // BatchRequest is move-only (promise) but std::function requires a
  // copyable callable — hand the batch over through a shared_ptr.
  auto shared =
      std::make_shared<std::vector<BatchRequest>>(std::move(batch));
  {
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    ++inflight_batches_;
  }
  // The notify happens UNDER inflight_mutex_: stop()'s waiter re-acquires
  // the mutex before returning, so it cannot observe inflight == 0 and let
  // the destructor tear down inflight_cv_ while notify_all() is still
  // executing on this thread (cv-destruction race TSan catches otherwise).
  const RejectReason reason = admission_.dispatch([this, bundle, shared] {
    execute_batch(bundle, *shared);
    const std::lock_guard<std::mutex> lock(inflight_mutex_);
    --inflight_batches_;
    inflight_cv_.notify_all();
  });
  if (reason != RejectReason::kNone) {
    {
      const std::lock_guard<std::mutex> lock(inflight_mutex_);
      --inflight_batches_;
      inflight_cv_.notify_all();
    }
    for (BatchRequest& request : *shared) shed(request, reason);
  }
}

void ClassificationService::execute_batch(
    const std::shared_ptr<const ModelBundle>& bundle,
    std::vector<BatchRequest>& batch) {
  const obs::TraceSpan span("serve.predict_batch");
  const auto exec_start = std::chrono::steady_clock::now();
  const robust::GuardedConfig& guard = bundle->guard_config();
  const std::size_t steps = guard.window_steps;
  const std::size_t sensors = guard.sensors;

  // Pack every well-shaped request into one tensor; odd-geometry requests
  // take the single-window path (and abstain there with kShape).
  std::vector<std::size_t> packed_index;
  packed_index.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const BatchRequest& r = batch[i];
    if (r.steps == steps && r.sensors == sensors &&
        r.window.size() == steps * sensors) {
      packed_index.push_back(i);
    }
  }
  std::vector<robust::GuardedPrediction> packed_out;
  if (!packed_index.empty()) {
    data::Tensor3 windows(packed_index.size(), steps, sensors);
    for (std::size_t j = 0; j < packed_index.size(); ++j) {
      const std::vector<double>& src = batch[packed_index[j]].window;
      std::copy(src.begin(), src.end(), windows.trial(j).begin());
    }
    packed_out = bundle->guard().classify_batch(windows);
  }

  std::size_t next_packed = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    BatchRequest& request = batch[i];
    ServeResult result;
    result.accepted = true;
    result.model_version = bundle->version();
    result.batch_size = batch.size();
    result.queue_delay_s = seconds_since(request.enqueued, exec_start);
    if (next_packed < packed_index.size() && packed_index[next_packed] == i) {
      result.prediction = std::move(packed_out[next_packed]);
      ++next_packed;
    } else {
      result.prediction = bundle->guard().classify(
          request.window, request.steps, request.sensors);
    }
    result.total_latency_s =
        seconds_since(request.enqueued, std::chrono::steady_clock::now());
    obs_request_seconds_.observe(result.total_latency_s);
    request.promise.set_value(std::move(result));
  }
  obs_batch_exec_seconds_.observe(
      seconds_since(exec_start, std::chrono::steady_clock::now()));
}

void ClassificationService::stop() {
  admission_.close();
  // Flushes every queued batch through run_batch (inline-drain path above),
  // then joins the flusher.
  batcher_->stop();
  // Wait out batches already handed to the pool.
  std::unique_lock<std::mutex> lock(inflight_mutex_);
  inflight_cv_.wait(lock, [this] { return inflight_batches_ == 0; });
}

}  // namespace scwc::serve
