#include "serve/micro_batcher.hpp"

#include <algorithm>
#include <utility>

#include "common/error.hpp"
#include "serve/chaos.hpp"

namespace scwc::serve {

MicroBatcher::MicroBatcher(MicroBatcherConfig config, BatchRunner runner,
                           ExpiredHandler expired)
    : config_(config),
      runner_(std::move(runner)),
      expired_handler_(std::move(expired)) {
  SCWC_REQUIRE(config_.max_batch > 0, "MicroBatcher: max_batch must be > 0");
  SCWC_REQUIRE(config_.max_delay_s >= 0.0,
               "MicroBatcher: max_delay_s must be >= 0");
  SCWC_REQUIRE(static_cast<bool>(runner_),
               "MicroBatcher: a batch runner is required");
  auto& reg = obs::MetricsRegistry::global();
  obs_flush_size_ = reg.counter("scwc_serve_batch_flush_size_total");
  obs_flush_deadline_ = reg.counter("scwc_serve_batch_flush_deadline_total");
  obs_queue_depth_ = reg.gauge("scwc_serve_batch_queue_depth");
  obs_batch_size_ = reg.histogram(
      "scwc_serve_batch_size",
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0});
  flusher_ = std::thread([this] { flusher_loop(); });
}

MicroBatcher::~MicroBatcher() { stop(); }

bool MicroBatcher::submit(BatchRequest&& request) {
  request.enqueued = std::chrono::steady_clock::now();
  {
    const scwc::LockGuard lock(mutex_);
    if (stop_) return false;
    pending_.push_back(std::move(request));
    obs_queue_depth_.set(static_cast<double>(pending_.size()));
  }
  cv_.notify_one();
  return true;
}

std::size_t MicroBatcher::pending() const {
  const scwc::LockGuard lock(mutex_);
  return pending_.size();
}

std::vector<BatchRequest> MicroBatcher::cut_batch_locked(
    std::chrono::steady_clock::time_point now,
    std::vector<BatchRequest>& expired) {
  std::vector<BatchRequest> batch;
  batch.reserve(std::min(config_.max_batch, pending_.size()));
  while (!pending_.empty() && batch.size() < config_.max_batch) {
    BatchRequest request = std::move(pending_.front());
    pending_.pop_front();
    if (expired_handler_ && request.deadline <= now) {
      expired.push_back(std::move(request));
    } else {
      batch.push_back(std::move(request));
    }
  }
  obs_queue_depth_.set(static_cast<double>(pending_.size()));
  obs_batch_size_.observe(static_cast<double>(batch.size()));
  return batch;
}

std::chrono::steady_clock::time_point MicroBatcher::min_deadline_locked()
    const {
  auto min = std::chrono::steady_clock::time_point::max();
  for (const BatchRequest& request : pending_) {
    min = std::min(min, request.deadline);
  }
  return min;
}

void MicroBatcher::flusher_loop() {
  const auto max_delay = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.max_delay_s));
  scwc::LockGuard lock(mutex_);
  for (;;) {
    // Explicit wait loops (not the predicate overloads): clang's analysis
    // does not look inside predicate lambdas, this form it checks.
    while (!stop_ && pending_.empty()) cv_.wait(mutex_);
    if (pending_.empty()) {
      if (stop_) return;
      continue;
    }
    // Wait out the remaining deadline of the OLDEST request unless the
    // batch fills (or stop) first. wait_until re-checks under the lock, so
    // a submit racing the deadline either makes this batch or the next.
    // The wait is also bounded by the earliest per-request deadline so an
    // expired request is shed promptly instead of riding a late batch.
    const auto flush_at = std::min(pending_.front().enqueued + max_delay,
                                   min_deadline_locked());
    bool filled = stop_ || pending_.size() >= config_.max_batch;
    while (!filled) {
      const bool timed_out =
          cv_.wait_until(mutex_, flush_at) == std::cv_status::timeout;
      filled = stop_ || pending_.size() >= config_.max_batch;
      if (timed_out) break;
    }
    if (filled && !stop_) {
      obs_flush_size_.inc();
    } else if (!stop_) {
      obs_flush_deadline_.inc();
    }
    std::vector<BatchRequest> expired;
    std::vector<BatchRequest> batch =
        cut_batch_locked(std::chrono::steady_clock::now(), expired);
    lock.unlock();
    for (BatchRequest& request : expired) {
      expired_handler_(std::move(request));
    }
    if (config_.chaos != nullptr) config_.chaos->on_flusher_cut();
    if (!batch.empty()) runner_(std::move(batch));
    lock.lock();
    if (stop_ && pending_.empty()) return;
  }
}

void MicroBatcher::stop() {
  {
    const scwc::LockGuard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  // Serialise the join so concurrent stop() calls (destructor racing an
  // explicit stop) both return only after the flusher exited.
  const scwc::LockGuard join_lock(join_mutex_);
  if (flusher_.joinable()) flusher_.join();
}

}  // namespace scwc::serve
