#include "serve/model_registry.hpp"

#include <utility>

#include "common/error.hpp"

namespace scwc::serve {

ModelBundle::ModelBundle(std::string version,
                         preprocess::FeaturePipeline pipeline,
                         std::unique_ptr<ml::Classifier> model,
                         robust::GuardedConfig guard_config)
    : version_(std::move(version)),
      pipeline_(std::move(pipeline)),
      model_(std::move(model)),
      guard_(pipeline_, *model_, guard_config) {
  SCWC_REQUIRE(!version_.empty(), "ModelBundle: version must be non-empty");
  SCWC_REQUIRE(pipeline_.fitted(), "ModelBundle: pipeline must be fitted");
  SCWC_REQUIRE(guard_config.window_steps == pipeline_.steps() &&
                   guard_config.sensors == pipeline_.sensors(),
               "ModelBundle: guard geometry must match the fitted pipeline");
}

std::shared_ptr<const ModelBundle> train_rf_bundle(
    const RfBundleSpec& spec, const data::Tensor3& x_train,
    std::span<const int> y_train) {
  SCWC_REQUIRE(x_train.trials() == y_train.size(),
               "train_rf_bundle: |x_train| != |y_train|");
  preprocess::FeaturePipeline pipeline(spec.pipeline);
  const linalg::Matrix features = pipeline.fit_transform(x_train);
  auto forest = std::make_unique<ml::RandomForest>(spec.forest);
  forest->fit(features, y_train);

  robust::GuardedConfig guard;
  guard.window_steps = x_train.steps();
  guard.sensors = x_train.sensors();
  guard.min_quality = spec.min_quality;
  guard.fallback_label = robust::majority_label(y_train);
  guard.imputation = spec.imputation;
  return std::make_shared<const ModelBundle>(spec.version, std::move(pipeline),
                                             std::move(forest), guard);
}

ModelRegistry::ModelRegistry() {
  auto& reg = obs::MetricsRegistry::global();
  obs_swaps_ = reg.counter("scwc_serve_registry_swaps_total");
  obs_rollbacks_ = reg.counter("scwc_serve_registry_rollbacks_total");
  obs_bundles_ = reg.gauge("scwc_serve_registry_bundles");
}

void ModelRegistry::register_bundle(std::shared_ptr<const ModelBundle> bundle,
                                    bool activate) {
  SCWC_REQUIRE(bundle != nullptr, "register_bundle: null bundle");
  const scwc::LockGuard lock(mutex_);
  const auto [it, inserted] = bundles_.emplace(bundle->version(), bundle);
  SCWC_REQUIRE(inserted, "register_bundle: version already registered: " +
                             bundle->version());
  obs_bundles_.set(static_cast<double>(bundles_.size()));
  if (activate) {
    if (current_ != nullptr) {
      activation_history_.push_back(current_->version());
    }
    current_ = std::move(bundle);
    obs_swaps_.inc();
  }
}

std::shared_ptr<const ModelBundle> ModelRegistry::current() const {
  const scwc::LockGuard lock(mutex_);
  return current_;
}

std::shared_ptr<const ModelBundle> ModelRegistry::get(
    const std::string& version) const {
  const scwc::LockGuard lock(mutex_);
  const auto it = bundles_.find(version);
  return it == bundles_.end() ? nullptr : it->second;
}

void ModelRegistry::activate(const std::string& version) {
  const scwc::LockGuard lock(mutex_);
  const auto it = bundles_.find(version);
  SCWC_REQUIRE(it != bundles_.end(), "activate: unknown version: " + version);
  if (current_ == it->second) return;
  if (current_ != nullptr) {
    activation_history_.push_back(current_->version());
  }
  current_ = it->second;
  obs_swaps_.inc();
}

std::shared_ptr<const ModelBundle> ModelRegistry::rollback() {
  const scwc::LockGuard lock(mutex_);
  if (activation_history_.empty()) return nullptr;
  const std::string version = activation_history_.back();
  activation_history_.pop_back();
  const auto it = bundles_.find(version);
  // Registered bundles are never removed, so the history entry resolves.
  SCWC_CHECK(it != bundles_.end(), "rollback: history names unknown version");
  current_ = it->second;
  obs_rollbacks_.inc();
  return current_;
}

std::vector<std::string> ModelRegistry::versions() const {
  const scwc::LockGuard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(bundles_.size());
  for (const auto& [version, bundle] : bundles_) out.push_back(version);
  return out;
}

}  // namespace scwc::serve
