// Deadline/size micro-batching of concurrent classification requests.
//
// Single-window inference wastes the matrix-shaped fast paths below it
// (one pipeline transform + one Classifier::predict per window). The
// MicroBatcher queues incoming requests and flushes them as ONE batch when
// either the batch is full (max_batch) or the oldest request has waited
// max_delay_s — the classic latency/throughput knob of online serving.
//
// The batcher owns a dedicated flusher thread; batch execution itself is
// delegated to a BatchRunner callback installed by the owning service
// (which typically hops onto the shared ThreadPool through the
// AdmissionController). Each request carries a promise; whatever happens —
// flush, shutdown, runner failure — the promise is fulfilled exactly once.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_types.hpp"

namespace scwc::serve {

class ChaosInjector;  // serve/chaos.hpp — optional fault injection hook

/// Flush policy. Defaults favour throughput at a 5 ms latency budget.
struct MicroBatcherConfig {
  std::size_t max_batch = 64;   ///< flush immediately at this size
  double max_delay_s = 0.005;   ///< flush when the oldest request is this old
  /// Optional seeded fault injector (chaos testing only). When set, the
  /// flusher calls ChaosInjector::on_flusher_cut() after each batch cut,
  /// which may stall the flusher thread. Must outlive the batcher.
  ChaosInjector* chaos = nullptr;
};

/// One queued classification request.
struct BatchRequest {
  std::vector<double> window;  ///< row-major steps × sensors
  std::size_t steps = 0;
  std::size_t sensors = 0;
  /// Request-trace identity (service-stamped; see obs/request_trace.hpp).
  std::uint64_t trace_id = 0;
  std::int64_t job_id = -1;    ///< source job, -1 when unattributed
  bool trace_sampled = false;  ///< head-sampling verdict, fixed at submit
  /// Service submit entry (before admission); `enqueued` minus this is
  /// the admission phase.
  std::chrono::steady_clock::time_point submitted;
  std::chrono::steady_clock::time_point enqueued;
  /// Absolute deadline; time_point::max() (the default) means "none".
  /// Requests whose deadline passed while queued are cut out of the batch
  /// and handed to the expired handler instead of the runner.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  std::promise<ServeResult> promise;
};

/// Coalesces submitted requests into batches under a deadline/size policy.
class MicroBatcher {
 public:
  /// Receives the cut batch and must fulfil every request's promise.
  using BatchRunner = std::function<void(std::vector<BatchRequest>&&)>;
  /// Receives one request whose deadline expired while queued and must
  /// fulfil its promise (typically with kDeadlineExceeded).
  using ExpiredHandler = std::function<void(BatchRequest&&)>;

  /// Starts the flusher thread. `runner` is called on the flusher thread,
  /// once per cut batch, never concurrently with itself. `expired` (when
  /// set) receives requests whose deadline passed while queued, also on the
  /// flusher thread; without it expired requests stay in the batch and the
  /// runner is expected to apply its own deadline policy.
  MicroBatcher(MicroBatcherConfig config, BatchRunner runner,
               ExpiredHandler expired = nullptr);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one request (stamping `enqueued`) and returns true, or
  /// returns false after stop() — the caller then fulfils the promise
  /// itself with a shutdown rejection.
  [[nodiscard]] bool submit(BatchRequest&& request);

  /// Requests currently queued (instantaneous; admission reads this).
  [[nodiscard]] std::size_t pending() const;

  /// Flushes every queued request, then joins the flusher. Idempotent.
  /// After stop() submit() returns false.
  void stop();

  [[nodiscard]] const MicroBatcherConfig& config() const noexcept {
    return config_;
  }

 private:
  void flusher_loop();
  /// Cuts up to max_batch requests off the queue front.
  /// When an expired handler is installed, requests whose deadline ≤ now are
  /// diverted into `expired` (they do not count against max_batch).
  std::vector<BatchRequest> cut_batch_locked(
      std::chrono::steady_clock::time_point now,
      std::vector<BatchRequest>& expired) SCWC_REQUIRES(mutex_);
  /// Earliest pending deadline, or time_point::max().
  [[nodiscard]] std::chrono::steady_clock::time_point min_deadline_locked()
      const SCWC_REQUIRES(mutex_);

  const MicroBatcherConfig config_;
  const BatchRunner runner_;
  const ExpiredHandler expired_handler_;

  mutable Mutex mutex_{"serve.batcher.queue"};
  CondVar cv_;
  std::deque<BatchRequest> pending_ SCWC_GUARDED_BY(mutex_);
  bool stop_ SCWC_GUARDED_BY(mutex_) = false;
  // Serialises the join phase of stop(); distinct from mutex_ because the
  // flusher takes mutex_ while draining.
  Mutex join_mutex_{"serve.batcher.join"};
  std::thread flusher_ SCWC_GUARDED_BY(join_mutex_);

  obs::CounterHandle obs_flush_size_;      ///< flushes triggered by max_batch
  obs::CounterHandle obs_flush_deadline_;  ///< flushes triggered by max_delay
  obs::GaugeHandle obs_queue_depth_;
  obs::HistogramHandle obs_batch_size_;
};

}  // namespace scwc::serve
