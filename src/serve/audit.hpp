// Verdict audit log: one JSONL record per serve verdict (schema
// scwc.audit/v1).
//
// The serving loop answers, abstains or sheds thousands of requests per
// second; when an operator later asks "why did job 17's windows abstain
// at 14:02", rerunning is not an answer. The AuditLogger appends exactly
// one JSON line per verdict — trace id, job id, bundle version, abstain
// or shed reason, quality evidence, the per-phase latency breakdown and
// the deadline slack — so post-hoc analysis is a grep away.
//
// Schema (scwc.audit/v1) — every line is one object:
//   schema            "scwc.audit/v1"
//   trace_id          number ≥ 1, the request's trace id
//   job_id            number, -1 when the caller supplied none
//   event             "answer" | "abstain" | "shed"
//   model_version     string; "" for sheds (no bundle consulted)
//   label             number; the answered/fallback label, -1 = none
//   degrade_level     0 | 1 | 2 (fallback-chain rung)
//   batch_size        number ≥ 0 (0 for sheds before batching)
//   abstain_reason    string, present iff event == "abstain"
//   reject_reason     string, present iff event == "shed"
//   quality           number in [0, 1], present iff accepted
//   missing_values    number ≥ 0, present iff accepted
//   repaired_values   number ≥ 0, present iff accepted
//   phases            object {admission_s, queue_s, batch_wait_s,
//                     transform_s, predict_s, total_s}, all numbers ≥ 0;
//                     router-side records add route_s, wire_send_s and
//                     wire_recv_s (optional in the schema, numbers ≥ 0)
//   deadline_slack_s  number, present iff the request had a deadline
//                     (positive = answered with room to spare)
//   shard_id          number ≥ 0, present iff a ShardRouter wrote the
//                     record (which shard served the request)
//
// Writes are mutex-serialised; the logger is shared by the batch
// executor threads. Durability favours throughput: lines are flushed on
// destruction/flush(), not per record.
#pragma once

#include <cstdint>
#include <fstream>
#include <optional>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

#include "obs/json.hpp"
#include "obs/request_trace.hpp"

namespace scwc::serve {

inline constexpr const char* kAuditSchema = "scwc.audit/v1";

/// One verdict, ready for serialisation.
struct AuditRecord {
  std::uint64_t trace_id = 0;
  std::int64_t job_id = -1;
  std::string event;          ///< "answer" | "abstain" | "shed"
  std::string model_version;  ///< "" for sheds
  int label = -1;
  int degrade_level = 0;
  std::size_t batch_size = 0;
  std::string abstain_reason;  ///< abstains only
  std::string reject_reason;   ///< sheds only
  double quality = 0.0;        ///< accepted only
  std::size_t missing_values = 0;
  std::size_t repaired_values = 0;
  obs::RequestPhases phases;
  std::optional<double> deadline_slack_s;  ///< set iff a deadline existed
  std::optional<std::uint32_t> shard_id;   ///< set iff routed over SCWCWIRE
};

/// Serialises one record (without trailing newline).
[[nodiscard]] obs::Json audit_record_to_json(const AuditRecord& record);

/// Validates one parsed line against scwc.audit/v1. Returns "" when the
/// record conforms, else a one-line description of the first violation.
[[nodiscard]] std::string validate_audit_record_json(const obs::Json& record);

/// Append-only JSONL writer. Thread-safe; never throws after
/// construction (write errors latch into ok()).
class AuditLogger {
 public:
  /// Opens `path` for appending; throws std::runtime_error on failure.
  explicit AuditLogger(const std::string& path);

  void log(const AuditRecord& record);

  void flush();
  [[nodiscard]] std::uint64_t records_written() const;
  /// False once any write failed (disk full, closed fd, …).
  [[nodiscard]] bool ok() const;

 private:
  mutable Mutex mutex_{"serve.audit"};
  std::ofstream out_ SCWC_GUARDED_BY(mutex_);
  std::uint64_t written_ SCWC_GUARDED_BY(mutex_) = 0;
  bool ok_ SCWC_GUARDED_BY(mutex_) = true;
};

}  // namespace scwc::serve
