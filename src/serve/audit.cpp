#include "serve/audit.hpp"

#include <stdexcept>
#include <utility>

namespace scwc::serve {

using obs::Json;

Json audit_record_to_json(const AuditRecord& record) {
  Json::Object phases;
  phases.emplace("admission_s", Json(record.phases.admission_s));
  phases.emplace("queue_s", Json(record.phases.queue_s));
  phases.emplace("batch_wait_s", Json(record.phases.batch_wait_s));
  phases.emplace("transform_s", Json(record.phases.transform_s));
  phases.emplace("predict_s", Json(record.phases.predict_s));
  phases.emplace("total_s", Json(record.phases.total_s));
  if (record.shard_id.has_value()) {
    // Wire phases only mean something on routed records; in-process
    // records keep the original six-key phase object byte-for-byte.
    phases.emplace("route_s", Json(record.phases.route_s));
    phases.emplace("wire_send_s", Json(record.phases.wire_send_s));
    phases.emplace("wire_recv_s", Json(record.phases.wire_recv_s));
  }

  Json::Object out;
  out.emplace("schema", Json(kAuditSchema));
  out.emplace("trace_id", Json(static_cast<double>(record.trace_id)));
  out.emplace("job_id", Json(static_cast<double>(record.job_id)));
  out.emplace("event", Json(record.event));
  out.emplace("model_version", Json(record.model_version));
  out.emplace("label", Json(record.label));
  out.emplace("degrade_level", Json(record.degrade_level));
  out.emplace("batch_size", Json(record.batch_size));
  out.emplace("phases", Json(std::move(phases)));
  if (record.event == "abstain") {
    out.emplace("abstain_reason", Json(record.abstain_reason));
  }
  if (record.event == "shed") {
    out.emplace("reject_reason", Json(record.reject_reason));
  }
  if (record.event != "shed") {
    out.emplace("quality", Json(record.quality));
    out.emplace("missing_values", Json(record.missing_values));
    out.emplace("repaired_values", Json(record.repaired_values));
  }
  if (record.deadline_slack_s.has_value()) {
    out.emplace("deadline_slack_s", Json(*record.deadline_slack_s));
  }
  if (record.shard_id.has_value()) {
    out.emplace("shard_id", Json(static_cast<double>(*record.shard_id)));
  }
  return Json(std::move(out));
}

namespace {

const char* kPhaseKeys[] = {"admission_s", "queue_s",   "batch_wait_s",
                            "transform_s", "predict_s", "total_s"};

const char* kWirePhaseKeys[] = {"route_s", "wire_send_s", "wire_recv_s"};

}  // namespace

std::string validate_audit_record_json(const Json& record) {
  if (!record.is_object()) return "record is not an object";
  if (!record.contains("schema") || !record.at("schema").is_string() ||
      record.at("schema").as_string() != kAuditSchema) {
    return std::string("schema must be \"") + kAuditSchema + "\"";
  }
  for (const char* key : {"event", "model_version"}) {
    if (!record.contains(key) || !record.at(key).is_string()) {
      return std::string("missing string field: ") + key;
    }
  }
  for (const char* key :
       {"trace_id", "job_id", "label", "degrade_level", "batch_size"}) {
    if (!record.contains(key) || !record.at(key).is_number()) {
      return std::string("missing numeric field: ") + key;
    }
  }
  if (record.at("trace_id").as_number() < 1.0) return "trace_id must be >= 1";
  const double degrade = record.at("degrade_level").as_number();
  if (degrade < 0.0 || degrade > 2.0) {
    return "degrade_level out of range [0, 2]";
  }
  if (record.at("batch_size").as_number() < 0.0) {
    return "batch_size must be >= 0";
  }

  if (!record.contains("phases") || !record.at("phases").is_object()) {
    return "missing phases object";
  }
  const Json& phases = record.at("phases");
  for (const char* key : kPhaseKeys) {
    if (!phases.contains(key) || !phases.at(key).is_number()) {
      return std::string("phases lacks numeric ") + key;
    }
    if (phases.at(key).as_number() < 0.0) {
      return std::string("phases.") + key + " is negative";
    }
  }
  // Router-side wire phases are optional but typed when present.
  for (const char* key : kWirePhaseKeys) {
    if (!phases.contains(key)) continue;
    if (!phases.at(key).is_number()) {
      return std::string("phases.") + key + " must be a number";
    }
    if (phases.at(key).as_number() < 0.0) {
      return std::string("phases.") + key + " is negative";
    }
  }

  const std::string& event = record.at("event").as_string();
  if (event == "answer") {
    if (record.contains("abstain_reason") ||
        record.contains("reject_reason")) {
      return "answer records must not carry a reason field";
    }
  } else if (event == "abstain") {
    if (!record.contains("abstain_reason") ||
        !record.at("abstain_reason").is_string() ||
        record.at("abstain_reason").as_string().empty()) {
      return "abstain records need a non-empty abstain_reason";
    }
  } else if (event == "shed") {
    if (!record.contains("reject_reason") ||
        !record.at("reject_reason").is_string() ||
        record.at("reject_reason").as_string().empty()) {
      return "shed records need a non-empty reject_reason";
    }
    if (!record.at("model_version").as_string().empty()) {
      return "shed records must not name a model_version";
    }
  } else {
    return "event must be answer|abstain|shed, got \"" + event + "\"";
  }

  if (event != "shed") {
    for (const char* key : {"quality", "missing_values", "repaired_values"}) {
      if (!record.contains(key) || !record.at(key).is_number()) {
        return std::string("accepted records need numeric ") + key;
      }
    }
    const double quality = record.at("quality").as_number();
    if (quality < 0.0 || quality > 1.0) return "quality out of range [0, 1]";
  }

  if (record.contains("deadline_slack_s") &&
      !record.at("deadline_slack_s").is_number()) {
    return "deadline_slack_s must be a number";
  }
  if (record.contains("shard_id")) {
    if (!record.at("shard_id").is_number()) {
      return "shard_id must be a number";
    }
    if (record.at("shard_id").as_number() < 0.0) {
      return "shard_id must be >= 0";
    }
  }
  return "";
}

AuditLogger::AuditLogger(const std::string& path)
    : out_(path, std::ios::app) {
  if (!out_) {
    throw std::runtime_error("AuditLogger: cannot open " + path);
  }
}

void AuditLogger::log(const AuditRecord& record) {
  const std::string line = audit_record_to_json(record).dump();
  const scwc::LockGuard lock(mutex_);
  if (!ok_) return;
  out_ << line << '\n';
  if (!out_) {
    ok_ = false;
    return;
  }
  ++written_;
}

void AuditLogger::flush() {
  const scwc::LockGuard lock(mutex_);
  out_.flush();
}

std::uint64_t AuditLogger::records_written() const {
  const scwc::LockGuard lock(mutex_);
  return written_;
}

bool AuditLogger::ok() const {
  const scwc::LockGuard lock(mutex_);
  return ok_;
}

}  // namespace scwc::serve
