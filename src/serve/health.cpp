#include "serve/health.hpp"

#include <sstream>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/request_trace.hpp"

namespace scwc::serve {

const char* breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half_open";
    case BreakerState::kOpen:
      return "open";
  }
  return "?";
}

// ---------------------------------------------------------------- monitor

namespace {

obs::RollingConfig monitor_rolling_config(const HealthConfig& config) {
  obs::RollingConfig rc;
  rc.window_s = config.window_s;
  rc.slots = config.window_slots;
  return rc;
}

}  // namespace

std::vector<double> HealthMonitor::latency_bounds(double max_p99_s) {
  std::vector<double> bounds;
  for (double m = 1.0 / 64.0; m <= 64.0; m *= 2.0) {
    bounds.push_back(max_p99_s * m);
  }
  return bounds;  // t/64 … 64t with an edge exactly at t
}

HealthMonitor::HealthMonitor(HealthConfig config)
    : config_(config),
      latency_(latency_bounds(config.max_p99_s),
               monitor_rolling_config(config)),
      abstained_(monitor_rolling_config(config)),
      model_errors_(monitor_rolling_config(config)),
      sheds_(monitor_rolling_config(config)) {
  SCWC_REQUIRE(config_.window_s > 0.0,
               "HealthMonitor: window_s must be > 0");
  SCWC_REQUIRE(config_.window_slots > 0,
               "HealthMonitor: window_slots must be > 0");
  SCWC_REQUIRE(config_.min_samples > 0,
               "HealthMonitor: min_samples must be > 0");
  SCWC_REQUIRE(config_.max_p99_s > 0.0,
               "HealthMonitor: max_p99_s must be > 0");
}

void HealthMonitor::record_accepted(double latency_s, bool abstained,
                                    bool model_error) {
  record_accepted(latency_s, abstained, model_error, Clock::now());
}

void HealthMonitor::record_accepted(double latency_s, bool abstained,
                                    bool model_error, Clock::time_point now) {
  latency_.observe(latency_s, now);
  if (abstained) abstained_.inc(1, now);
  if (model_error) model_errors_.inc(1, now);
}

void HealthMonitor::record_shed(RejectReason reason) {
  record_shed(reason, Clock::now());
}

void HealthMonitor::record_shed(RejectReason reason, Clock::time_point now) {
  // Shutdown sheds are the service turning off, not the service failing.
  if (reason == RejectReason::kShutdown) return;
  sheds_.inc(1, now);
}

HealthStats HealthMonitor::stats() const { return stats(Clock::now()); }

HealthStats HealthMonitor::stats(Clock::time_point now) const {
  // Each primitive is internally locked; reading them in sequence can
  // split one logical record across the boundary. The breaker tolerates
  // off-by-one stats — it reacts to sustained violations, not single
  // samples.
  const obs::RollingHistogramSnapshot lat = latency_.snapshot(now);
  HealthStats s;
  s.samples = lat.count;
  s.p99_s = lat.p99;
  s.sheds = sheds_.value(now);
  s.model_errors = model_errors_.value(now);
  if (lat.count > 0) {
    s.abstain_rate = static_cast<double>(abstained_.value(now)) /
                     static_cast<double>(lat.count);
  }
  if (s.samples + s.sheds > 0) {
    s.shed_rate = static_cast<double>(s.sheds) /
                  static_cast<double>(s.samples + s.sheds);
  }
  return s;
}

bool HealthMonitor::unhealthy(std::string* why) const {
  return unhealthy(why, Clock::now());
}

bool HealthMonitor::unhealthy(std::string* why, Clock::time_point now) const {
  const HealthStats s = stats(now);
  // model_errors is an absolute tripwire: even a handful means the bundle
  // itself is broken, so it is checked before the min_samples gate would
  // wait for a full window of broken answers.
  if (s.model_errors > config_.max_model_errors) {
    if (why != nullptr) {
      std::ostringstream os;
      os << "model_errors " << s.model_errors << " > "
         << config_.max_model_errors;
      *why = os.str();
    }
    return true;
  }
  if (s.samples + s.sheds < config_.min_samples) return false;
  std::ostringstream os;
  if (s.samples >= config_.min_samples && s.p99_s > config_.max_p99_s) {
    os << "p99 " << s.p99_s << " s > " << config_.max_p99_s << " s";
  } else if (s.samples >= config_.min_samples &&
             s.abstain_rate > config_.max_abstain_rate) {
    os << "abstain_rate " << s.abstain_rate << " > "
       << config_.max_abstain_rate;
  } else if (s.shed_rate > config_.max_shed_rate) {
    os << "shed_rate " << s.shed_rate << " > " << config_.max_shed_rate;
  } else {
    return false;
  }
  if (why != nullptr) *why = os.str();
  return true;
}

void HealthMonitor::reset() {
  latency_.reset();
  abstained_.reset();
  model_errors_.reset();
  sheds_.reset();
}

// ------------------------------------------------------------------ chain

FallbackChain::FallbackChain(ModelRegistry& registry, HealthConfig config)
    : registry_(registry), config_(config) {
  auto& reg = obs::MetricsRegistry::global();
  obs_state_ = reg.gauge("scwc_serve_breaker_state");
  obs_depth_ = reg.gauge("scwc_serve_fallback_depth");
  obs_trips_ = reg.counter("scwc_serve_breaker_trips_total");
  obs_recoveries_ = reg.counter("scwc_serve_breaker_recoveries_total");
  obs_state_.set(0.0);
  obs_depth_.set(0.0);
}

std::shared_ptr<const ModelBundle> FallbackChain::bundle_for_level_locked(
    int level) const {
  if (level <= 0) return registry_.current();
  if (level == 1 && !config_.fallback_version.empty()) {
    return registry_.get(config_.fallback_version);
  }
  return nullptr;  // level 2: abstain-only
}

void FallbackChain::set_state_locked(BreakerState state) noexcept {
  state_ = state;
  obs_state_.set(static_cast<double>(state));
}

void FallbackChain::set_depth_locked(int depth) noexcept {
  depth_ = depth;
  obs_depth_.set(static_cast<double>(depth));
}

Route FallbackChain::route(std::chrono::steady_clock::time_point now) {
  const scwc::LockGuard lock(mutex_);
  Route r;
  if (state_ == BreakerState::kOpen) {
    const auto cooldown = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(config_.open_cooldown_s));
    if (now - opened_at_ >= cooldown) {
      set_state_locked(BreakerState::kHalfOpen);
      probe_outstanding_ = false;
      healthy_probes_ = 0;
    }
  }
  if (state_ == BreakerState::kHalfOpen && !probe_outstanding_ &&
      depth_ > 0) {
    // Probe one level up the ladder; its outcome decides the next step.
    int probe_level = depth_ - 1;
    r.bundle = bundle_for_level_locked(probe_level);
    if (probe_level > 0 && r.bundle == nullptr) {
      // Rung 1 has no bundle (no fallback_version) — probe the full path
      // directly, mirroring the trip path that skipped the rung going down.
      probe_level = 0;
      r.bundle = bundle_for_level_locked(0);
    }
    if (probe_level == 0 || r.bundle != nullptr) {
      r.level = probe_level;
      r.probe = true;
      probe_outstanding_ = true;
      return r;
    }
  }
  r.level = depth_;
  r.bundle = bundle_for_level_locked(depth_);
  if (depth_ == 1 && r.bundle == nullptr) {
    // Fallback bundle vanished between trip and now — degrade further.
    set_depth_locked(2);
    r.level = 2;
  }
  return r;
}

void FallbackChain::on_unhealthy(std::chrono::steady_clock::time_point now) {
  const scwc::LockGuard lock(mutex_);
  if (state_ == BreakerState::kOpen) return;
  if (!incident_) {
    incident_ = true;
    incident_start_ = now;
  }
  ++trips_;
  obs_trips_.inc();
  set_state_locked(BreakerState::kOpen);
  opened_at_ = now;
  probe_outstanding_ = false;
  healthy_probes_ = 0;
  if (depth_ < 2) {
    int next = depth_ + 1;
    if (next == 1 && bundle_for_level_locked(1) == nullptr) next = 2;
    set_depth_locked(next);
  }
  SCWC_LOG_WARN("serve breaker OPEN, degraded to level " << depth_);
}

void FallbackChain::on_probe_outcome(
    bool healthy, std::chrono::steady_clock::time_point now) {
  const scwc::LockGuard lock(mutex_);
  probe_outstanding_ = false;
  if (state_ != BreakerState::kHalfOpen) return;
  if (!healthy) {
    set_state_locked(BreakerState::kOpen);
    opened_at_ = now;
    healthy_probes_ = 0;
    return;
  }
  ++healthy_probes_;
  if (healthy_probes_ < config_.half_open_probes) return;
  healthy_probes_ = 0;
  if (depth_ > 0) {
    int next = depth_ - 1;
    // Don't climb onto a rung with no bundle — route() would immediately
    // demote again; land on the level the probes actually exercised.
    if (next == 1 && bundle_for_level_locked(1) == nullptr) next = 0;
    set_depth_locked(next);
  }
  if (depth_ == 0) {
    set_state_locked(BreakerState::kClosed);
    ++recoveries_;
    obs_recoveries_.inc();
    if (incident_) {
      last_recovery_s_ = obs::seconds_between(incident_start_, now);
      incident_ = false;
    }
    SCWC_LOG_INFO("serve breaker CLOSED, full path restored");
  } else {
    // One rung climbed; stay half-open and keep probing toward level 0.
    SCWC_LOG_INFO("serve breaker half-open, climbed to level " << depth_);
  }
}

BreakerState FallbackChain::state() const {
  const scwc::LockGuard lock(mutex_);
  return state_;
}

int FallbackChain::depth() const {
  const scwc::LockGuard lock(mutex_);
  return depth_;
}

std::size_t FallbackChain::trips() const {
  const scwc::LockGuard lock(mutex_);
  return trips_;
}

std::size_t FallbackChain::recoveries() const {
  const scwc::LockGuard lock(mutex_);
  return recoveries_;
}

double FallbackChain::last_recovery_s() const {
  const scwc::LockGuard lock(mutex_);
  return last_recovery_s_;
}

bool FallbackChain::incident_active() const {
  const scwc::LockGuard lock(mutex_);
  return incident_;
}

}  // namespace scwc::serve
