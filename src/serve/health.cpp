#include "serve/health.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/log.hpp"

namespace scwc::serve {

const char* breaker_state_name(BreakerState state) noexcept {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kHalfOpen:
      return "half_open";
    case BreakerState::kOpen:
      return "open";
  }
  return "?";
}

// ---------------------------------------------------------------- monitor

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {
  SCWC_REQUIRE(config_.window > 0, "HealthMonitor: window must be > 0");
  SCWC_REQUIRE(config_.min_samples > 0,
               "HealthMonitor: min_samples must be > 0");
}

void HealthMonitor::record_accepted(double latency_s, bool abstained,
                                    bool model_error) {
  const std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.push_back({latency_s, abstained, model_error});
  while (outcomes_.size() > config_.window) outcomes_.pop_front();
  admissions_.push_back(true);
  while (admissions_.size() > config_.window) admissions_.pop_front();
}

void HealthMonitor::record_shed(RejectReason reason) {
  // Shutdown sheds are the service turning off, not the service failing.
  if (reason == RejectReason::kShutdown) return;
  const std::lock_guard<std::mutex> lock(mutex_);
  admissions_.push_back(false);
  while (admissions_.size() > config_.window) admissions_.pop_front();
}

HealthStats HealthMonitor::stats_locked() const {
  HealthStats s;
  s.samples = outcomes_.size();
  for (const bool accepted : admissions_) s.sheds += accepted ? 0 : 1;

  if (!outcomes_.empty()) {
    std::vector<double> latencies;
    latencies.reserve(outcomes_.size());
    std::size_t abstained = 0;
    for (const Outcome& o : outcomes_) {
      latencies.push_back(o.latency_s);
      abstained += o.abstained ? 1 : 0;
      s.model_errors += o.model_error ? 1 : 0;
    }
    std::sort(latencies.begin(), latencies.end());
    const auto rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(latencies.size())));
    s.p99_s = latencies[rank == 0 ? 0 : rank - 1];
    s.abstain_rate = static_cast<double>(abstained) /
                     static_cast<double>(outcomes_.size());
  }
  if (!admissions_.empty()) {
    s.shed_rate = static_cast<double>(s.sheds) /
                  static_cast<double>(admissions_.size());
  }
  return s;
}

HealthStats HealthMonitor::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_locked();
}

bool HealthMonitor::unhealthy(std::string* why) const {
  HealthStats s;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    s = stats_locked();
  }
  // model_errors is an absolute tripwire: even a handful means the bundle
  // itself is broken, so it is checked before the min_samples gate would
  // wait for a full window of broken answers.
  if (s.model_errors > config_.max_model_errors) {
    if (why != nullptr) {
      std::ostringstream os;
      os << "model_errors " << s.model_errors << " > "
         << config_.max_model_errors;
      *why = os.str();
    }
    return true;
  }
  if (s.samples + s.sheds < config_.min_samples) return false;
  std::ostringstream os;
  if (s.samples >= config_.min_samples && s.p99_s > config_.max_p99_s) {
    os << "p99 " << s.p99_s << " s > " << config_.max_p99_s << " s";
  } else if (s.samples >= config_.min_samples &&
             s.abstain_rate > config_.max_abstain_rate) {
    os << "abstain_rate " << s.abstain_rate << " > "
       << config_.max_abstain_rate;
  } else if (s.shed_rate > config_.max_shed_rate) {
    os << "shed_rate " << s.shed_rate << " > " << config_.max_shed_rate;
  } else {
    return false;
  }
  if (why != nullptr) *why = os.str();
  return true;
}

void HealthMonitor::reset() {
  const std::lock_guard<std::mutex> lock(mutex_);
  outcomes_.clear();
  admissions_.clear();
}

// ------------------------------------------------------------------ chain

FallbackChain::FallbackChain(ModelRegistry& registry, HealthConfig config)
    : registry_(registry), config_(config) {
  auto& reg = obs::MetricsRegistry::global();
  obs_state_ = reg.gauge("scwc_serve_breaker_state");
  obs_depth_ = reg.gauge("scwc_serve_fallback_depth");
  obs_trips_ = reg.counter("scwc_serve_breaker_trips_total");
  obs_recoveries_ = reg.counter("scwc_serve_breaker_recoveries_total");
  obs_state_.set(0.0);
  obs_depth_.set(0.0);
}

std::shared_ptr<const ModelBundle> FallbackChain::bundle_for_level_locked(
    int level) const {
  if (level <= 0) return registry_.current();
  if (level == 1 && !config_.fallback_version.empty()) {
    return registry_.get(config_.fallback_version);
  }
  return nullptr;  // level 2: abstain-only
}

void FallbackChain::set_state_locked(BreakerState state) noexcept {
  state_ = state;
  obs_state_.set(static_cast<double>(state));
}

void FallbackChain::set_depth_locked(int depth) noexcept {
  depth_ = depth;
  obs_depth_.set(static_cast<double>(depth));
}

Route FallbackChain::route(std::chrono::steady_clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  Route r;
  if (state_ == BreakerState::kOpen) {
    const auto cooldown = std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(config_.open_cooldown_s));
    if (now - opened_at_ >= cooldown) {
      set_state_locked(BreakerState::kHalfOpen);
      probe_outstanding_ = false;
      healthy_probes_ = 0;
    }
  }
  if (state_ == BreakerState::kHalfOpen && !probe_outstanding_ &&
      depth_ > 0) {
    // Probe one level up the ladder; its outcome decides the next step.
    int probe_level = depth_ - 1;
    r.bundle = bundle_for_level_locked(probe_level);
    if (probe_level > 0 && r.bundle == nullptr) {
      // Rung 1 has no bundle (no fallback_version) — probe the full path
      // directly, mirroring the trip path that skipped the rung going down.
      probe_level = 0;
      r.bundle = bundle_for_level_locked(0);
    }
    if (probe_level == 0 || r.bundle != nullptr) {
      r.level = probe_level;
      r.probe = true;
      probe_outstanding_ = true;
      return r;
    }
  }
  r.level = depth_;
  r.bundle = bundle_for_level_locked(depth_);
  if (depth_ == 1 && r.bundle == nullptr) {
    // Fallback bundle vanished between trip and now — degrade further.
    set_depth_locked(2);
    r.level = 2;
  }
  return r;
}

void FallbackChain::on_unhealthy(std::chrono::steady_clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (state_ == BreakerState::kOpen) return;
  if (!incident_) {
    incident_ = true;
    incident_start_ = now;
  }
  ++trips_;
  obs_trips_.inc();
  set_state_locked(BreakerState::kOpen);
  opened_at_ = now;
  probe_outstanding_ = false;
  healthy_probes_ = 0;
  if (depth_ < 2) {
    int next = depth_ + 1;
    if (next == 1 && bundle_for_level_locked(1) == nullptr) next = 2;
    set_depth_locked(next);
  }
  SCWC_LOG_WARN("serve breaker OPEN, degraded to level " << depth_);
}

void FallbackChain::on_probe_outcome(
    bool healthy, std::chrono::steady_clock::time_point now) {
  const std::lock_guard<std::mutex> lock(mutex_);
  probe_outstanding_ = false;
  if (state_ != BreakerState::kHalfOpen) return;
  if (!healthy) {
    set_state_locked(BreakerState::kOpen);
    opened_at_ = now;
    healthy_probes_ = 0;
    return;
  }
  ++healthy_probes_;
  if (healthy_probes_ < config_.half_open_probes) return;
  healthy_probes_ = 0;
  if (depth_ > 0) {
    int next = depth_ - 1;
    // Don't climb onto a rung with no bundle — route() would immediately
    // demote again; land on the level the probes actually exercised.
    if (next == 1 && bundle_for_level_locked(1) == nullptr) next = 0;
    set_depth_locked(next);
  }
  if (depth_ == 0) {
    set_state_locked(BreakerState::kClosed);
    ++recoveries_;
    obs_recoveries_.inc();
    if (incident_) {
      last_recovery_s_ =
          std::chrono::duration<double>(now - incident_start_).count();
      incident_ = false;
    }
    SCWC_LOG_INFO("serve breaker CLOSED, full path restored");
  } else {
    // One rung climbed; stay half-open and keep probing toward level 0.
    SCWC_LOG_INFO("serve breaker half-open, climbed to level " << depth_);
  }
}

BreakerState FallbackChain::state() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

int FallbackChain::depth() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return depth_;
}

std::size_t FallbackChain::trips() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return trips_;
}

std::size_t FallbackChain::recoveries() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return recoveries_;
}

double FallbackChain::last_recovery_s() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return last_recovery_s_;
}

bool FallbackChain::incident_active() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return incident_;
}

}  // namespace scwc::serve
