// ClassificationService — the assembled online-inference front end.
//
// Wires the serve components into one request path:
//
//   ingest/submit → AdmissionController (bounded queue, typed shedding)
//                 → MicroBatcher (deadline/size flush)
//                 → ThreadPool task (one GuardedClassifier::classify_batch
//                   on the ModelRegistry bundle captured at batch cut)
//                 → per-request promise fulfilment
//
// Threading model: callers submit from any thread; the batcher's flusher
// thread cuts batches and hands them to the shared ThreadPool, so flushing
// never blocks on inference and inference parallelises across batches. The
// bundle is captured ONCE per batch, making hot-swap atomic from the
// request's point of view: every window of a batch is answered by the same
// model version, and versions change only between batches.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/thread_pool.hpp"
#include "obs/request_trace.hpp"
#include "serve/admission.hpp"
#include "serve/health.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/model_registry.hpp"
#include "serve/serve_types.hpp"
#include "serve/window_assembler.hpp"

namespace scwc::serve {

class ChaosInjector;  // serve/chaos.hpp
class AuditLogger;    // serve/audit.hpp

/// Full serving configuration. The assembler geometry must match the
/// bundles the registry serves (odd-geometry windows abstain with kShape).
struct ServiceConfig {
  WindowAssemblerConfig assembler;
  MicroBatcherConfig batcher;
  AdmissionConfig admission;
  /// Per-request latency budget; 0 disables deadlines. Requests past their
  /// deadline are resolved with kDeadlineExceeded at whichever of the three
  /// checkpoints (enqueue, batch capture, post-predict) first sees it.
  double default_deadline_s = 0.0;
  /// Breaker thresholds + fallback chain; health.enabled=false (default)
  /// serves exactly as before this layer existed.
  HealthConfig health;
  /// Optional fault injector for chaos tests; must outlive the service.
  /// Also forwarded to the batcher (flusher-stall hook).
  ChaosInjector* chaos = nullptr;
  /// Request tracing: every submission gets a trace id regardless; the
  /// sample_rate decides which requests keep a full phase-timing record
  /// (deterministic in (seed, trace id) — replays sample identically).
  obs::RequestTracerConfig trace;
  /// Optional verdict audit log (one scwc.audit/v1 JSONL record per
  /// verdict). Must outlive the service.
  AuditLogger* audit = nullptr;
};

/// One window emitted by the streaming API, with its pending result.
struct PendingWindow {
  std::int64_t job_id = 0;
  std::size_t start_step = 0;
  std::future<ServeResult> result;
};

/// The online classification service (see file header for the data flow).
class ClassificationService {
 public:
  /// `registry` must outlive the service. `pool` defaults to the global
  /// pool; pass a dedicated one to isolate serving from training load.
  ClassificationService(ModelRegistry& registry, ServiceConfig config,
                        ThreadPool* pool = nullptr);
  ~ClassificationService();

  ClassificationService(const ClassificationService&) = delete;
  ClassificationService& operator=(const ClassificationService&) = delete;

  /// Submits one complete window for classification. The future always
  /// becomes ready: with a shed ServeResult (accepted == false) when
  /// admission rejects, no model is active, or the deadline expires, else
  /// with the guarded prediction once its batch executes. The first
  /// overload derives the deadline from config().default_deadline_s (none
  /// when 0); the second takes an explicit absolute deadline
  /// (time_point::max() = none).
  [[nodiscard]] std::future<ServeResult> submit(std::vector<double> window,
                                                std::size_t steps,
                                                std::size_t sensors);
  [[nodiscard]] std::future<ServeResult> submit(
      std::vector<double> window, std::size_t steps, std::size_t sensors,
      std::chrono::steady_clock::time_point deadline);

  /// Cluster entry: submit under an externally-issued trace identity (the
  /// router's trace id + sampling verdict, propagated over SCWCWIRE) so
  /// worker-side phases land under the same trace as the router's record.
  /// trace_id 0 falls back to a locally-issued id (untraced v1 peer).
  [[nodiscard]] std::future<ServeResult> submit_with_trace(
      std::vector<double> window, std::size_t steps, std::size_t sensors,
      std::chrono::steady_clock::time_point deadline, std::uint64_t trace_id,
      bool trace_sampled);

  /// Streaming front door: feeds one sample row (or several with
  /// ingest_block) into the WindowAssembler and submits every window that
  /// closed. Returns the pending results (usually 0 or 1 per call).
  [[nodiscard]] std::vector<PendingWindow> ingest(
      std::int64_t job_id, std::span<const double> sample);
  [[nodiscard]] std::vector<PendingWindow> ingest_block(
      std::int64_t job_id, std::span<const double> block);

  /// Ends a job's stream, submitting a final truncated window when the
  /// assembler's partial policy allows one.
  [[nodiscard]] std::vector<PendingWindow> finish_job(std::int64_t job_id);

  /// Stops accepting requests, flushes queued batches, waits for in-flight
  /// inference. Idempotent; the destructor calls it.
  void stop();

  [[nodiscard]] const ServiceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const WindowAssembler& assembler() const noexcept {
    return assembler_;
  }
  /// Requests queued in the batcher right now.
  [[nodiscard]] std::size_t pending() const { return batcher_->pending(); }

  /// Health introspection; null unless config().health.enabled.
  [[nodiscard]] const HealthMonitor* monitor() const noexcept {
    return monitor_.get();
  }
  [[nodiscard]] const FallbackChain* chain() const noexcept {
    return chain_.get();
  }
  /// Request tracer (ids, sampling verdicts, retained records). Mutable
  /// so callers can drain() sampled records for export after stop().
  [[nodiscard]] obs::RequestTracer& tracer() noexcept { return tracer_; }

 private:
  /// The real submit: stamps trace identity (and the source job) before
  /// admission. job_id -1 = unattributed (direct submit() calls).
  /// trace_id 0 = issue a fresh local id; nonzero adopts the caller's id
  /// and sampling verdict (cluster workers; see submit_with_trace).
  [[nodiscard]] std::future<ServeResult> submit_traced(
      std::vector<double> window, std::size_t steps, std::size_t sensors,
      std::chrono::steady_clock::time_point deadline, std::int64_t job_id,
      std::uint64_t trace_id = 0, bool trace_sampled = false);
  /// Tracing/audit tap, called once per verdict just before the promise
  /// is fulfilled. `done` is the verdict timestamp.
  void note_verdict(const BatchRequest& request, const ServeResult& result,
                    std::chrono::steady_clock::time_point done);
  /// Runs on the flusher thread: evaluates health, routes the batch through
  /// the fallback chain (or straight to the current bundle) and dispatches
  /// it to the pool. During drain (after stop() closed admission) the batch
  /// executes inline instead, so queued requests still get answered rather
  /// than shed.
  void run_batch(std::vector<BatchRequest>&& batch);
  /// Reads the monitor and reacts: bundle faults trigger an automatic
  /// registry rollback, cluster-level SLO violations trip the breaker.
  void evaluate_health(std::chrono::steady_clock::time_point now);
  /// Executes one batch against the routed bundle and fulfils every
  /// promise. Never lets an exception escape with unresolved promises.
  /// `cut` is the batch-cut timestamp (ends the queue phase; executor
  /// pickup ends the batch-wait phase).
  void execute_batch(const Route& route, std::vector<BatchRequest>& batch,
                     std::chrono::steady_clock::time_point cut);
  /// Resolves every request of an abstain-only (level 2) batch inline.
  void answer_degraded(std::vector<BatchRequest>& batch);
  /// Fulfils a request's promise with a typed rejection (and counts it).
  void shed(BatchRequest& request, RejectReason reason);

  ModelRegistry& registry_;
  const ServiceConfig config_;
  ThreadPool& pool_;
  // Internally synchronized (each owns its mutex); no service-level lock
  // guards them, so guarded-field-coverage is waived field by field.
  WindowAssembler assembler_;    // scwc-lint: allow(guarded-field-coverage)
  AdmissionController admission_;  // scwc-lint: allow(guarded-field-coverage)
  obs::RequestTracer tracer_;    // scwc-lint: allow(guarded-field-coverage)
  // Null unless config_.health.enabled: the SLO sensor and the breaker.
  // The pointers are set once in the constructor and never reseated; the
  // pointees synchronize themselves.
  std::unique_ptr<HealthMonitor> monitor_;  // scwc-lint: allow(guarded-field-coverage)
  std::unique_ptr<FallbackChain> chain_;  // scwc-lint: allow(guarded-field-coverage)
  // unique_ptr: the batcher's runner captures `this`, so it is constructed
  // after the members it uses and destroyed (stopping the flusher) first.
  // Set once in the constructor; the batcher locks internally.
  std::unique_ptr<MicroBatcher> batcher_;  // scwc-lint: allow(guarded-field-coverage)

  // Batches handed to the pool but not finished; stop() waits for zero.
  Mutex inflight_mutex_{"serve.inflight"};
  CondVar inflight_cv_;
  std::size_t inflight_batches_ SCWC_GUARDED_BY(inflight_mutex_) = 0;

  obs::CounterHandle obs_requests_;
  obs::HistogramHandle obs_request_seconds_;
  obs::RollingHistogramHandle obs_request_seconds_rolling_;
  obs::HistogramHandle obs_batch_exec_seconds_;
  obs::CounterHandle obs_deadline_missed_;
  obs::CounterHandle obs_degraded_;
  obs::CounterHandle obs_auto_rollbacks_;
};

}  // namespace scwc::serve
