// Client-side retry with jittered, budgeted exponential backoff.
//
// Admission control (serve/admission.hpp) sheds on purpose: a kQueueFull or
// kExecutor verdict means "back off and come again", not "this window is
// unclassifiable". This header gives the two in-repo clients (scwc_serve,
// bench/serve_throughput) one shared policy for doing that correctly:
// bounded attempts, exponential backoff with uniform jitter (so retries
// from many clients decorrelate instead of re-stampeding the queue), and a
// hard wall-clock budget after which the request is abandoned with a
// kDeadlineExceeded verdict. Non-retryable sheds (shutdown, no model,
// deadline) and accepted answers return immediately.
//
// Also home of get_within(), the deadline-aware future getter lib code must
// use instead of a bare future::get() (lint rule no-unchecked-future-get).
#pragma once

#include <cstddef>
#include <functional>
#include <future>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "serve/service.hpp"

namespace scwc::serve {

/// Backoff policy. Defaults retry up to 3 times inside a 250 ms budget.
struct RetryPolicy {
  std::size_t max_attempts = 4;      ///< total tries (first + retries)
  double initial_backoff_s = 0.0005; ///< nominal sleep before retry 1
  double backoff_multiplier = 2.0;   ///< nominal sleep growth per retry
  double max_backoff_s = 0.02;       ///< nominal sleep cap
  double jitter = 0.5;               ///< sleep drawn from ±jitter around nominal
  double budget_s = 0.25;            ///< wall-clock cap across all attempts
};

/// Waits up to `timeout_s` for the future, returning nullopt on timeout.
/// The future stays valid on timeout — the caller may wait again later.
[[nodiscard]] std::optional<ServeResult> get_within(
    std::future<ServeResult>& future, double timeout_s);

/// The generic retry core behind submit_with_retry (and the cluster
/// router's submit_and_wait): runs `attempt(budget_left_s)` up to
/// policy.max_attempts times with jittered exponential backoff between
/// tries. `attempt` performs one bounded submission — it gets the
/// remaining wall-clock budget and returns the result, or nullopt when its
/// own wait timed out (which ends the loop: the budget is spent). Returns
/// the first accepted or non-retryable result; when attempts or budget run
/// out on a retryable shed, the reason is rewritten to kDeadlineExceeded
/// (the caller could not wait any longer).
[[nodiscard]] ServeResult retry_with_backoff(
    const RetryPolicy& policy, Rng& rng,
    const std::function<std::optional<ServeResult>(double)>& attempt);

/// Submits `window`, retrying retryable sheds under `policy`. Blocks the
/// calling thread across backoff sleeps and future waits — this is a
/// CLIENT helper; never call it from the serve path itself. Returns the
/// first non-retryable result, or a synthesized kDeadlineExceeded shed when
/// attempts or budget run out. `rng` drives the jitter so closed-loop
/// benches stay reproducible.
[[nodiscard]] ServeResult submit_with_retry(ClassificationService& service,
                                            const std::vector<double>& window,
                                            std::size_t steps,
                                            std::size_t sensors,
                                            const RetryPolicy& policy,
                                            Rng& rng);

}  // namespace scwc::serve
