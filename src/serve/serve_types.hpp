// Shared result types of the online serving subsystem.
//
// Every request that enters scwc_serve leaves exactly one of three ways:
// rejected by admission control (ServeResult::accepted == false, with a
// typed RejectReason), answered by the model, or abstained by the guarded
// inference path (both accepted == true, with the GuardedPrediction
// carrying the label/abstention and its quality evidence). Latency and
// batch metadata ride along so load generators and dashboards never have
// to correlate with a second channel.
#pragma once

#include <cstdint>
#include <string>

#include "obs/request_trace.hpp"
#include "robust/guarded_classifier.hpp"

namespace scwc::serve {

/// Why admission control rejected a request. Each reason maps to a
/// scwc_serve_shed_<reason>_total counter so overload behaviour is visible
/// per cause, not as one lump.
enum class RejectReason {
  kNone = 0,          ///< not rejected
  kQueueFull,         ///< batcher queue at its bound — sustained overload
  kExecutor,          ///< ThreadPool batch queue at its bound (try_submit false)
  kShutdown,          ///< service stopping/stopped
  kNoModel,           ///< registry has no active bundle
  kDeadlineExceeded,  ///< request deadline passed before a fresh answer
  kInternal,          ///< batch executor failed/lost the request (or chaos)
  kShardDown,         ///< cluster router: the shard owning this job died
                      ///< mid-flight or the ring has no live shard left
};

/// Short stable name ("queue_full", "executor", "shutdown", "no_model",
/// "deadline", "internal", "shard_down"; "none" when accepted).
[[nodiscard]] const char* reject_reason_name(RejectReason reason) noexcept;

/// True for shed reasons a client may sensibly retry after backing off:
/// transient overload (kQueueFull, kExecutor), executor loss (kInternal)
/// and a dead shard (kShardDown — the router rehashes the job onto the
/// survivors, so a resubmit lands somewhere alive).
/// Shutdown, missing models and expired deadlines are not retryable.
[[nodiscard]] bool retryable(RejectReason reason) noexcept;

/// Final outcome of one serve request.
struct ServeResult {
  bool accepted = false;            ///< false → shed; prediction is empty
  RejectReason reject_reason = RejectReason::kNone;
  robust::GuardedPrediction prediction;  ///< valid when accepted
  std::string model_version;        ///< bundle that served the batch
  double queue_delay_s = 0.0;       ///< submit → batch cut from the queue
  double total_latency_s = 0.0;     ///< submit → result ready
  std::size_t batch_size = 0;       ///< windows in the serving batch
  /// Which rung of the fallback chain answered: 0 = full pipeline,
  /// 1 = degraded fallback bundle, 2 = abstain-only degraded mode.
  int degrade_level = 0;
  /// Request-scoped trace id (never 0 once the service stamped it) and
  /// the per-phase latency breakdown — DESIGN.md §7. Always filled, not
  /// just for sampled requests; sampling only gates record retention.
  std::uint64_t trace_id = 0;
  obs::RequestPhases phases;
};

}  // namespace scwc::serve
