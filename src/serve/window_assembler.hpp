// Streaming window assembly — the ingestion front of the serving layer.
//
// Telemetry arrives one sample row at a time, per job; the classifiers
// consume fixed steps×sensors windows. The WindowAssembler buffers each
// job's stream and emits a window through robust::robust_extract_window
// the moment it closes, so downstream code (MicroBatcher, GuardedClassifier)
// only ever sees whole windows plus the QualityReport of their extraction.
// Windows may overlap (stride < window) or skip samples (stride > window);
// buffered history is trimmed to the next window's start, so per-job memory
// stays bounded by window + stride regardless of job duration.
//
// Thread safety: all methods are safe to call concurrently; state is
// guarded by one mutex (ingestion is row-sized work — contention is not a
// throughput concern next to model inference).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

#include "obs/metrics.hpp"
#include "robust/quality.hpp"

namespace scwc::serve {

/// Assembly policy for one service.
struct WindowAssemblerConfig {
  std::size_t window_steps = 0;  ///< samples per emitted window (required)
  std::size_t sensors = 0;       ///< sensors per sample (required)
  /// Steps between consecutive window starts; 0 → window_steps (tumbling).
  std::size_t stride_steps = 0;
  /// On finish(): emit a final short window (NaN-padded tail, recorded as
  /// truncated in the QualityReport) when at least this many unconsumed
  /// steps remain. 0 disables partial emission.
  std::size_t min_partial_steps = 1;

  [[nodiscard]] std::size_t effective_stride() const noexcept {
    return stride_steps == 0 ? window_steps : stride_steps;
  }
};

/// One closed window, ready for classification. `values` may still contain
/// NaNs (sensor dropouts arrive as NaN samples; a truncated final window is
/// NaN-padded) — repair happens inside the guarded classifier, so the
/// extraction report here covers missingness on arrival only.
struct AssembledWindow {
  std::int64_t job_id = 0;
  std::size_t start_step = 0;        ///< offset in the job's stream
  std::vector<double> values;        ///< window_steps × sensors, row-major
  robust::QualityReport extraction;  ///< from robust_extract_window
};

/// Per-job stream buffers emitting fixed-geometry windows as they close.
class WindowAssembler {
 public:
  explicit WindowAssembler(WindowAssemblerConfig config);

  [[nodiscard]] const WindowAssemblerConfig& config() const noexcept {
    return config_;
  }

  /// Appends one sample row (`sample.size() == sensors`) to `job_id`'s
  /// stream and returns every window that closed as a result (zero or one
  /// for stride ≥ 1). Non-finite sample values pass through untouched and
  /// surface in the extraction QualityReport.
  [[nodiscard]] std::vector<AssembledWindow> push(
      std::int64_t job_id, std::span<const double> sample);

  /// Appends `block.size() / sensors` consecutive rows at once (bulk
  /// ingestion / catch-up after a feed gap).
  [[nodiscard]] std::vector<AssembledWindow> push_block(
      std::int64_t job_id, std::span<const double> block);

  /// Ends `job_id`'s stream, dropping its buffers. When the tail holds at
  /// least min_partial_steps unconsumed steps, emits one final truncated
  /// window (robust_extract_window NaN-pads the absent tail and records it
  /// as truncated_steps). Unknown jobs return {}.
  [[nodiscard]] std::vector<AssembledWindow> finish(std::int64_t job_id);

  /// Jobs currently holding buffered samples.
  [[nodiscard]] std::size_t active_jobs() const;

  /// Samples seen for a job so far (0 for unknown jobs); tests use this.
  [[nodiscard]] std::size_t stream_steps(std::int64_t job_id) const;

 private:
  struct JobStream {
    std::size_t base_step = 0;   ///< stream offset of rows.front()
    std::size_t next_start = 0;  ///< stream offset of the next window
    std::size_t total_steps = 0;
    std::vector<double> rows;    ///< buffered samples, row-major
  };

  /// Emits every window that is closed given the current buffer, then
  /// trims consumed history.
  void drain_closed(std::int64_t job_id, JobStream& stream,
                    std::vector<AssembledWindow>& out) SCWC_REQUIRES(mutex_);
  AssembledWindow cut_window(std::int64_t job_id, const JobStream& stream,
                             std::size_t start,
                             std::size_t available_steps) const;

  const WindowAssemblerConfig config_;
  mutable Mutex mutex_{"serve.assembler"};
  std::map<std::int64_t, JobStream> streams_ SCWC_GUARDED_BY(mutex_);

  obs::CounterHandle obs_samples_;
  obs::CounterHandle obs_windows_;
  obs::CounterHandle obs_partial_windows_;
  obs::GaugeHandle obs_active_jobs_;
};

}  // namespace scwc::serve
