// Serving health: rolling SLO monitor, circuit breaker, fallback chain.
//
// The serving stack from PR 4 assumed a healthy world: if inference got
// slow or a bundle went bad, requests simply queued, timed out, or came
// back wrong. This layer closes the loop. A HealthMonitor keeps a rolling
// window of per-request outcomes (latency, abstention, model error, shed)
// and derives p99 latency, abstain rate, shed rate. When any threshold is
// violated, the FallbackChain's circuit breaker trips open and serving
// degrades stepwise:
//
//   level 0: full pipeline (the registry's current bundle)
//   level 1: cheap fallback bundle (e.g. covariance-only, few trees)
//   level 2: abstain-only — every request is answered immediately with a
//            typed degraded abstention; nothing touches a model
//
// After `open_cooldown_s` the breaker moves to half-open and lets single
// probe batches through at the next-better level; `half_open_probes`
// consecutive healthy probes step the chain back up one level until it is
// closed again at level 0. Bundle-level faults (model exceptions,
// non-finite scores, failed loads) are handled separately by the service:
// they drive ModelRegistry::rollback() instead of degradation, because the
// previous version is the better answer when the *bundle* is broken and
// the cluster is fine.
//
// Thread model: HealthMonitor and FallbackChain are internally locked;
// record/route/transition calls arrive from pool workers and the flusher
// concurrently. Time is passed in explicitly (steady_clock time_points) so
// tests can drive transitions without sleeping.
#pragma once

#include <chrono>
#include <cstddef>
#include <memory>
#include <string>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "obs/rolling.hpp"
#include "serve/model_registry.hpp"
#include "serve/serve_types.hpp"

namespace scwc::serve {

/// Breaker states, ordered so the exported gauge reads naturally:
/// 0 healthy, 1 probing, 2 tripped.
enum class BreakerState { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

/// Short stable name ("closed", "half_open", "open").
[[nodiscard]] const char* breaker_state_name(BreakerState state) noexcept;

/// SLO thresholds and breaker timing. Disabled by default — a service
/// without a HealthConfig behaves exactly as before this layer existed.
struct HealthConfig {
  bool enabled = false;

  /// Rolling SLO window, in seconds (time-bucketed over `window_slots`
  /// ring slots — obs::RollingHistogram). Outcomes older than this stop
  /// influencing the breaker.
  double window_s = 5.0;
  std::size_t window_slots = 10;
  std::size_t min_samples = 32;  ///< below this, never declare unhealthy

  double max_p99_s = 0.050;        ///< p99 latency SLO for full-path answers
  double max_abstain_rate = 0.5;   ///< guard abstentions / accepted answers
  double max_shed_rate = 0.25;     ///< sheds / (sheds + accepted answers)
  std::size_t max_model_errors = 4;  ///< kModelError abstentions in window

  double open_cooldown_s = 0.5;     ///< open → half-open delay
  std::size_t half_open_probes = 3; ///< healthy probes per recovery step

  /// Registered version served at level 1. Empty (or unknown at trip time)
  /// skips straight to level 2 — abstain-only.
  std::string fallback_version;
};

/// Point-in-time health statistics over the monitor's rolling window.
struct HealthStats {
  std::size_t samples = 0;   ///< accepted answers currently in the window
  std::size_t sheds = 0;     ///< sheds currently in the window
  double p99_s = 0.0;
  double abstain_rate = 0.0;
  double shed_rate = 0.0;
  std::size_t model_errors = 0;
};

/// Rolling-window outcome recorder; the breaker's sensor. Built on the
/// obs rolling primitives (one RollingHistogram for latency, RollingCounters
/// for outcome classes) so the monitor's view and the exported
/// last-N-seconds telemetry share one mechanism. p99 is therefore a
/// bucket-interpolated estimate on a grid anchored at max_p99_s — exact
/// enough for a threshold comparison against max_p99_s itself.
///
/// Only FULL-PATH (level 0) accepted answers are recorded — degraded-mode
/// answers abstain by design, and feeding them back would hold the abstain
/// rate at 100 % and make recovery impossible. Sheds are always recorded.
///
/// Every call has an explicit-time overload so tests replay scenarios
/// without sleeping; the no-argument forms stamp steady_clock::now().
class HealthMonitor {
 public:
  using Clock = std::chrono::steady_clock;

  explicit HealthMonitor(HealthConfig config);

  void record_accepted(double latency_s, bool abstained, bool model_error);
  void record_accepted(double latency_s, bool abstained, bool model_error,
                       Clock::time_point now);
  void record_shed(RejectReason reason);
  void record_shed(RejectReason reason, Clock::time_point now);

  [[nodiscard]] HealthStats stats() const;
  [[nodiscard]] HealthStats stats(Clock::time_point now) const;

  /// True when the window has min_samples and any threshold is violated;
  /// `why` (optional) receives a one-line reason for the log.
  [[nodiscard]] bool unhealthy(std::string* why = nullptr) const;
  [[nodiscard]] bool unhealthy(std::string* why, Clock::time_point now) const;

  /// Forgets the window — called on trip/recovery so the next verdict is
  /// based on post-transition behaviour only.
  void reset();

  [[nodiscard]] const HealthConfig& config() const noexcept {
    return config_;
  }

  /// Latency bucket grid used by the monitor: a geometric ladder anchored
  /// at max_p99_s (t/64 … 64t) so the p99-vs-threshold comparison has a
  /// bucket edge exactly at the SLO bound.
  [[nodiscard]] static std::vector<double> latency_bounds(double max_p99_s);

 private:
  // No mutex of its own: the rolling primitives are internally locked and
  // each call touches exactly one of them; config_ is immutable.
  const HealthConfig config_;
  obs::RollingHistogram latency_;       ///< accepted full-path answers
  obs::RollingCounter abstained_;
  obs::RollingCounter model_errors_;
  obs::RollingCounter sheds_;
};

/// Where the FallbackChain routed one batch.
struct Route {
  std::shared_ptr<const ModelBundle> bundle;  ///< null at level 2 (or kNoModel)
  int level = 0;      ///< 0 full, 1 fallback bundle, 2 abstain-only
  bool probe = false; ///< half-open probe: outcome feeds on_probe_outcome()
};

/// The circuit breaker + stepwise degradation ladder (file header has the
/// state machine). `registry` must outlive the chain.
class FallbackChain {
 public:
  FallbackChain(ModelRegistry& registry, HealthConfig config);

  /// Picks the bundle/level for the batch being cut right now. At most one
  /// probe is outstanding at a time; a probe Route is only issued in
  /// half-open state.
  [[nodiscard]] Route route(std::chrono::steady_clock::time_point now);

  /// Trips the breaker one level down (0→1→2, skipping 1 when no fallback
  /// bundle resolves). Ignored while already open or at level 2 with the
  /// breaker open. Starts the MTTR clock on the first trip of an incident.
  void on_unhealthy(std::chrono::steady_clock::time_point now);

  /// Feeds a probe's verdict back. `half_open_probes` consecutive healthy
  /// probes step the chain up one level (reaching level 0 closes the
  /// breaker and ends the incident); one unhealthy probe re-opens it.
  void on_probe_outcome(bool healthy,
                        std::chrono::steady_clock::time_point now);

  [[nodiscard]] BreakerState state() const;
  [[nodiscard]] int depth() const;  ///< current degradation level 0..2
  [[nodiscard]] std::size_t trips() const;
  [[nodiscard]] std::size_t recoveries() const;
  /// Duration of the last completed incident (first trip → breaker closed),
  /// 0 when none completed yet — the bench's MTTR numerator.
  [[nodiscard]] double last_recovery_s() const;
  /// True between the first trip of an incident and full recovery.
  [[nodiscard]] bool incident_active() const;

  [[nodiscard]] const HealthConfig& config() const noexcept {
    return config_;
  }

 private:
  [[nodiscard]] std::shared_ptr<const ModelBundle> bundle_for_level_locked(
      int level) const SCWC_REQUIRES(mutex_);
  void set_state_locked(BreakerState state) noexcept SCWC_REQUIRES(mutex_);
  void set_depth_locked(int depth) noexcept SCWC_REQUIRES(mutex_);

  ModelRegistry& registry_;
  const HealthConfig config_;

  // Hierarchy note: route()/bundle_for_level_locked call into the registry
  // while holding mutex_, so "serve.chain" precedes "serve.registry" in the
  // lock order (DESIGN.md §8 table).
  mutable Mutex mutex_{"serve.chain"};
  BreakerState state_ SCWC_GUARDED_BY(mutex_) = BreakerState::kClosed;
  int depth_ SCWC_GUARDED_BY(mutex_) = 0;
  std::chrono::steady_clock::time_point opened_at_ SCWC_GUARDED_BY(mutex_){};
  std::chrono::steady_clock::time_point incident_start_
      SCWC_GUARDED_BY(mutex_){};
  bool incident_ SCWC_GUARDED_BY(mutex_) = false;
  bool probe_outstanding_ SCWC_GUARDED_BY(mutex_) = false;
  std::size_t healthy_probes_ SCWC_GUARDED_BY(mutex_) = 0;
  std::size_t trips_ SCWC_GUARDED_BY(mutex_) = 0;
  std::size_t recoveries_ SCWC_GUARDED_BY(mutex_) = 0;
  double last_recovery_s_ SCWC_GUARDED_BY(mutex_) = 0.0;

  obs::GaugeHandle obs_state_;
  obs::GaugeHandle obs_depth_;
  obs::CounterHandle obs_trips_;
  obs::CounterHandle obs_recoveries_;
};

}  // namespace scwc::serve
