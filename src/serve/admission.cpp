#include "serve/admission.hpp"

#include <utility>

namespace scwc::serve {

const char* reject_reason_name(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kNone:
      return "none";
    case RejectReason::kQueueFull:
      return "queue_full";
    case RejectReason::kExecutor:
      return "executor";
    case RejectReason::kShutdown:
      return "shutdown";
    case RejectReason::kNoModel:
      return "no_model";
    case RejectReason::kDeadlineExceeded:
      return "deadline";
    case RejectReason::kInternal:
      return "internal";
    case RejectReason::kShardDown:
      return "shard_down";
  }
  return "?";
}

bool retryable(RejectReason reason) noexcept {
  return reason == RejectReason::kQueueFull ||
         reason == RejectReason::kExecutor ||
         reason == RejectReason::kInternal ||
         reason == RejectReason::kShardDown;
}

AdmissionController::AdmissionController(ThreadPool& pool,
                                         AdmissionConfig config)
    : pool_(pool), config_(config) {
  auto& reg = obs::MetricsRegistry::global();
  obs_shed_queue_full_ = reg.counter("scwc_serve_shed_queue_full_total");
  obs_shed_executor_ = reg.counter("scwc_serve_shed_executor_total");
  obs_shed_shutdown_ = reg.counter("scwc_serve_shed_shutdown_total");
  obs_shed_no_model_ = reg.counter("scwc_serve_shed_no_model_total");
  obs_shed_deadline_ = reg.counter("scwc_serve_shed_deadline_total");
  obs_shed_internal_ = reg.counter("scwc_serve_shed_internal_total");
}

void AdmissionController::count_shed(RejectReason reason) noexcept {
  switch (reason) {
    case RejectReason::kQueueFull:
      obs_shed_queue_full_.inc();
      break;
    case RejectReason::kExecutor:
      obs_shed_executor_.inc();
      break;
    case RejectReason::kShutdown:
      obs_shed_shutdown_.inc();
      break;
    case RejectReason::kNoModel:
      obs_shed_no_model_.inc();
      break;
    case RejectReason::kDeadlineExceeded:
      obs_shed_deadline_.inc();
      break;
    case RejectReason::kInternal:
      obs_shed_internal_.inc();
      break;
    case RejectReason::kShardDown:  // router-level shed; the ShardRouter
      break;                        // keeps its own per-reason counters
    case RejectReason::kNone:
      break;
  }
}

RejectReason AdmissionController::admit_request(std::size_t pending_now) {
  if (closed()) return RejectReason::kShutdown;
  if (pending_now >= config_.max_pending) return RejectReason::kQueueFull;
  return RejectReason::kNone;
}

RejectReason AdmissionController::dispatch(std::function<void()> run_batch) {
  if (closed()) return RejectReason::kShutdown;
  if (pool_.try_submit(std::move(run_batch), config_.max_executor_queue)) {
    return RejectReason::kNone;
  }
  return pool_.stopped() ? RejectReason::kShutdown : RejectReason::kExecutor;
}

}  // namespace scwc::serve
