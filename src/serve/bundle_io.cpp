#include "serve/bundle_io.hpp"

#include <bit>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <functional>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace scwc::serve {

namespace {

// "SCWCBNDL" — distinct from the forest's own magic, which follows inside.
constexpr std::uint64_t kBundleMagic = 0x53435743424e444cULL;
constexpr std::uint64_t kFormatVersion = 1;

void write_u64(std::ostream& os, std::uint64_t v) {
  unsigned char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xffU);
  }
  os.write(reinterpret_cast<const char*>(bytes), 8);
}

std::uint64_t read_u64(std::istream& is) {
  unsigned char bytes[8];
  is.read(reinterpret_cast<char*>(bytes), 8);
  SCWC_REQUIRE(is.good(), "load_bundle: truncated stream");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(bytes[i]) << (8 * i);
  }
  return v;
}

void write_f64(std::ostream& os, double v) {
  write_u64(os, std::bit_cast<std::uint64_t>(v));
}

double read_f64(std::istream& is) {
  return std::bit_cast<double>(read_u64(is));
}

void write_string(std::ostream& os, const std::string& s) {
  write_u64(os, s.size());
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

// Length caps bound what a corrupted stream can make load_bundle allocate
// before a truncation/validation error fires (the fuzz test flips every
// byte of a valid bundle; a flipped length must fail typed, not OOM).
std::string read_string(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  SCWC_REQUIRE(n <= (1ULL << 16), "load_bundle: implausible string length");
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  SCWC_REQUIRE(is.good() || n == 0, "load_bundle: truncated string");
  return s;
}

void write_vec(std::ostream& os, const linalg::Vector& v) {
  write_u64(os, v.size());
  for (const double x : v) write_f64(os, x);
}

linalg::Vector read_vec(std::istream& is) {
  const std::uint64_t n = read_u64(is);
  SCWC_REQUIRE(n <= (1ULL << 24), "load_bundle: implausible vector length");
  linalg::Vector v(n);
  for (auto& x : v) x = read_f64(is);
  return v;
}

void write_matrix(std::ostream& os, const linalg::Matrix& m) {
  write_u64(os, m.rows());
  write_u64(os, m.cols());
  for (const double x : m.flat()) write_f64(os, x);
}

linalg::Matrix read_matrix(std::istream& is) {
  const std::uint64_t rows = read_u64(is);
  const std::uint64_t cols = read_u64(is);
  SCWC_REQUIRE(rows <= (1ULL << 20) && cols <= (1ULL << 20) &&
                   rows * cols <= (1ULL << 26),
               "load_bundle: implausible matrix shape");
  linalg::Matrix m(rows, cols);
  for (auto& x : m.flat()) x = read_f64(is);
  return m;
}

}  // namespace

void save_bundle(const ModelBundle& bundle, std::ostream& os) {
  const auto* forest = dynamic_cast<const ml::RandomForest*>(&bundle.model());
  SCWC_REQUIRE(forest != nullptr,
               "save_bundle: only RandomForest bundles are serialisable, got " +
                   bundle.model().name());

  write_u64(os, kBundleMagic);
  write_u64(os, kFormatVersion);
  write_string(os, bundle.version());

  const robust::GuardedConfig& guard = bundle.guard_config();
  write_u64(os, guard.window_steps);
  write_u64(os, guard.sensors);
  write_f64(os, guard.min_quality);
  write_u64(os, static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(guard.fallback_label)));
  write_u64(os, static_cast<std::uint64_t>(guard.imputation.policy));
  write_vec(os, guard.imputation.sensor_prior_means);

  const preprocess::FeaturePipeline& pipeline = bundle.pipeline();
  write_u64(os, static_cast<std::uint64_t>(pipeline.config().reduction));
  write_u64(os, pipeline.config().pca_components);
  write_u64(os, pipeline.steps());
  write_u64(os, pipeline.sensors());
  write_vec(os, pipeline.scaler().means());
  write_vec(os, pipeline.scaler().scales());
  write_u64(os, pipeline.pca().has_value() ? 1 : 0);
  if (pipeline.pca().has_value()) {
    const preprocess::Pca& pca = *pipeline.pca();
    write_vec(os, pca.mean());
    write_matrix(os, pca.components_matrix());
    write_vec(os, pca.explained_variance());
    write_vec(os, pca.explained_variance_ratio());
  }

  write_string(os, forest->name());
  forest->save(os);
  SCWC_REQUIRE(os.good(), "save_bundle: stream write failed");
}

void save_bundle_file(const ModelBundle& bundle, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  SCWC_REQUIRE(os.is_open(), "save_bundle_file: cannot open " + path);
  save_bundle(bundle, os);
}

std::shared_ptr<const ModelBundle> load_bundle(std::istream& is) {
  SCWC_REQUIRE(read_u64(is) == kBundleMagic, "load_bundle: bad magic");
  SCWC_REQUIRE(read_u64(is) == kFormatVersion,
               "load_bundle: unsupported format version");
  std::string version = read_string(is);

  robust::GuardedConfig guard;
  guard.window_steps = read_u64(is);
  guard.sensors = read_u64(is);
  guard.min_quality = read_f64(is);
  guard.fallback_label =
      static_cast<int>(static_cast<std::int64_t>(read_u64(is)));
  const std::uint64_t policy = read_u64(is);
  SCWC_REQUIRE(policy <= static_cast<std::uint64_t>(
                             robust::Imputation::kPriorMean),
               "load_bundle: unknown imputation policy");
  guard.imputation.policy = static_cast<robust::Imputation>(policy);
  guard.imputation.sensor_prior_means = read_vec(is);
  SCWC_REQUIRE(std::isfinite(guard.min_quality),
               "load_bundle: non-finite min_quality");

  preprocess::FeaturePipelineConfig pipeline_config;
  const std::uint64_t reduction = read_u64(is);
  SCWC_REQUIRE(
      reduction <= static_cast<std::uint64_t>(preprocess::Reduction::kNone),
      "load_bundle: unknown reduction");
  pipeline_config.reduction = static_cast<preprocess::Reduction>(reduction);
  pipeline_config.pca_components = read_u64(is);
  const std::size_t steps = read_u64(is);
  const std::size_t sensors = read_u64(is);
  linalg::Vector scaler_means = read_vec(is);   // sequence the two reads —
  linalg::Vector scaler_scales = read_vec(is);  // argument order is unspecified
  preprocess::StandardScaler scaler = preprocess::StandardScaler::restore(
      std::move(scaler_means), std::move(scaler_scales));
  std::optional<preprocess::Pca> pca;
  if (read_u64(is) != 0) {
    linalg::Vector mean = read_vec(is);
    linalg::Matrix components = read_matrix(is);
    linalg::Vector variance = read_vec(is);
    linalg::Vector ratio = read_vec(is);
    pca = preprocess::Pca::restore(std::move(mean), std::move(components),
                                   std::move(variance), std::move(ratio));
  }
  preprocess::FeaturePipeline pipeline = preprocess::FeaturePipeline::restore(
      pipeline_config, steps, sensors, std::move(scaler), std::move(pca));

  const std::string tag = read_string(is);
  SCWC_REQUIRE(tag == "RandomForest",
               "load_bundle: unsupported model tag: " + tag);
  auto forest = std::make_unique<ml::RandomForest>();
  forest->load(is);

  SCWC_REQUIRE(guard.window_steps == steps && guard.sensors == sensors,
               "load_bundle: guard/pipeline geometry mismatch");
  return std::make_shared<const ModelBundle>(
      std::move(version), std::move(pipeline), std::move(forest), guard);
}

std::shared_ptr<const ModelBundle> load_bundle_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  SCWC_REQUIRE(is.is_open(), "load_bundle_file: cannot open " + path);
  return load_bundle(is);
}

namespace {

std::shared_ptr<const ModelBundle> try_swap(
    ModelRegistry& registry,
    const std::function<std::shared_ptr<const ModelBundle>()>& load) {
  // The whole load happens BEFORE the registry is touched, so a failure at
  // any byte leaves the current bundle serving — no partial swap exists.
  std::shared_ptr<const ModelBundle> bundle;
  std::string what;
  try {
    bundle = load();
  } catch (const std::exception& e) {
    what = e.what();
    bundle = nullptr;
  }
  if (bundle == nullptr) {
    obs::MetricsRegistry::global()
        .counter("scwc_serve_bundle_load_failures_total")
        .inc();
    SCWC_LOG_WARN("bundle swap refused: " << what);
    return nullptr;
  }
  try {
    registry.register_bundle(bundle, /*activate=*/true);
  } catch (const std::exception& e) {
    // e.g. duplicate version — still a refused swap, registry unchanged.
    obs::MetricsRegistry::global()
        .counter("scwc_serve_bundle_load_failures_total")
        .inc();
    SCWC_LOG_WARN("bundle swap refused: " << e.what());
    return nullptr;
  }
  return bundle;
}

}  // namespace

std::shared_ptr<const ModelBundle> try_swap_from_stream(ModelRegistry& registry,
                                                        std::istream& is) {
  return try_swap(registry, [&is] { return load_bundle(is); });
}

std::shared_ptr<const ModelBundle> try_swap_from_file(ModelRegistry& registry,
                                                      const std::string& path) {
  return try_swap(registry, [&path] { return load_bundle_file(path); });
}

}  // namespace scwc::serve
