// Admission control: bounded queues and typed load shedding.
//
// Two places in the serving path can back up — the batcher's request queue
// (producers outrunning inference) and the ThreadPool's task queue (batch
// execution outrunning the workers). The AdmissionController bounds both:
// requests beyond max_pending are shed with kQueueFull BEFORE they enter
// the batcher, and batches the pool cannot take (ThreadPool::try_submit
// returning false at max_executor_queue) shed with kExecutor. Shedding at
// the door keeps latency of accepted requests bounded under overload
// instead of letting every request queue and time out — standard
// load-shedding doctrine for open-loop arrival streams.
#pragma once

#include <atomic>
#include <functional>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "serve/serve_types.hpp"

namespace scwc::serve {

/// Queue bounds. Defaults absorb a 16× batch burst before shedding.
struct AdmissionConfig {
  std::size_t max_pending = 1024;     ///< batcher requests before kQueueFull
  std::size_t max_executor_queue = 64;  ///< pool tasks before kExecutor
};

/// Gatekeeper in front of the MicroBatcher and the ThreadPool.
class AdmissionController {
 public:
  /// `pool` must outlive the controller.
  AdmissionController(ThreadPool& pool, AdmissionConfig config);

  /// Decides whether a request may enter the batcher given its current
  /// queue depth. Returns kNone to admit; otherwise the shed reason
  /// (kShutdown once closed, kQueueFull at the bound). Pure decision — the
  /// caller counts the shed through count_shed() when it rejects.
  [[nodiscard]] RejectReason admit_request(std::size_t pending_now);

  /// Hands a cut batch to the pool through try_submit. Returns kNone when
  /// enqueued; kExecutor when the pool's queue is at the bound; kShutdown
  /// when the pool has stopped or the controller is closed. Does NOT count
  /// sheds — the caller sheds one batch as many requests and counts each
  /// through count_shed().
  [[nodiscard]] RejectReason dispatch(std::function<void()> run_batch);

  /// Marks shutdown: every later admit_request/dispatch sheds kShutdown.
  void close() noexcept { closed_.store(true, std::memory_order_relaxed); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] const AdmissionConfig& config() const noexcept {
    return config_;
  }

  /// Counts one shed request for `reason` on its per-reason counter — the
  /// single accounting point: the service calls it once per rejected
  /// request, whatever produced the rejection (admission, dispatch, or the
  /// service itself, e.g. kNoModel). kNone is a no-op.
  void count_shed(RejectReason reason) noexcept;

 private:
  ThreadPool& pool_;
  AdmissionConfig config_;
  std::atomic<bool> closed_{false};

  obs::CounterHandle obs_shed_queue_full_;
  obs::CounterHandle obs_shed_executor_;
  obs::CounterHandle obs_shed_shutdown_;
  obs::CounterHandle obs_shed_no_model_;
  obs::CounterHandle obs_shed_deadline_;
  obs::CounterHandle obs_shed_internal_;
};

}  // namespace scwc::serve
