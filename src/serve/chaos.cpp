#include "serve/chaos.hpp"

#include <chrono>
#include <sstream>
#include <thread>

#include "common/log.hpp"

namespace scwc::serve {

namespace {

void sleep_seconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

ChaosProfile ChaosProfile::at_severity(double severity) {
  const double s = severity < 0.0 ? 0.0 : (severity > 1.0 ? 1.0 : severity);
  ChaosProfile p;
  if (s == 0.0) return p;
  p.flusher_stall_probability = 0.10 * s;
  p.flusher_stall_s = 0.02 + 0.08 * s;
  p.batch_delay_probability = 0.15 * s;
  p.batch_delay_s = 0.01 + 0.04 * s;
  p.batch_drop_probability = 0.05 * s;
  p.predict_spike_probability = 0.10 * s;
  p.predict_spike_s = 0.02 + 0.06 * s;
  p.corrupt_swap_probability = 0.50 * s;
  p.starve_probability = 0.05 * s;
  p.starve_task_s = 0.02 + 0.05 * s;
  p.starve_tasks = 2 + static_cast<std::size_t>(4.0 * s);
  return p;
}

bool ChaosProfile::empty() const noexcept {
  return flusher_stall_probability == 0.0 &&
         batch_delay_probability == 0.0 && batch_drop_probability == 0.0 &&
         predict_spike_probability == 0.0 &&
         corrupt_swap_probability == 0.0 && starve_probability == 0.0;
}

std::string to_string(const ChaosCounts& counts) {
  std::ostringstream out;
  out << "stalls=" << counts.flusher_stalls
      << " delays=" << counts.batch_delays
      << " drops=" << counts.batch_drops
      << " spikes=" << counts.predict_spikes
      << " corrupted_swaps=" << counts.corrupted_swaps
      << " starvation_bursts=" << counts.starvation_bursts;
  return out.str();
}

ChaosInjector::ChaosInjector(ChaosProfile profile, std::uint64_t seed)
    : profile_(profile), rng_(seed) {}

void ChaosInjector::set_armed(bool armed) noexcept {
  const scwc::LockGuard lock(mutex_);
  armed_ = armed;
}

bool ChaosInjector::armed() const noexcept {
  const scwc::LockGuard lock(mutex_);
  return armed_;
}

bool ChaosInjector::fire(double probability) {
  if (probability <= 0.0) return false;
  const scwc::LockGuard lock(mutex_);
  if (!armed_) return false;
  return rng_.bernoulli(probability);
}

void ChaosInjector::on_flusher_cut() {
  if (!fire(profile_.flusher_stall_probability)) return;
  {
    const scwc::LockGuard lock(mutex_);
    ++counts_.flusher_stalls;
  }
  SCWC_LOG_DEBUG("chaos: stalling flusher for " << profile_.flusher_stall_s
                                                << " s");
  sleep_seconds(profile_.flusher_stall_s);  // off the lock: stalls, not blocks
}

BatchFate ChaosInjector::on_batch_dispatch() {
  if (fire(profile_.batch_delay_probability)) {
    {
      const scwc::LockGuard lock(mutex_);
      ++counts_.batch_delays;
    }
    sleep_seconds(profile_.batch_delay_s);
  }
  if (fire(profile_.batch_drop_probability)) {
    const scwc::LockGuard lock(mutex_);
    ++counts_.batch_drops;
    return BatchFate::kDrop;
  }
  return BatchFate::kProceed;
}

void ChaosInjector::on_predict_start() {
  if (!fire(profile_.predict_spike_probability)) return;
  {
    const scwc::LockGuard lock(mutex_);
    ++counts_.predict_spikes;
  }
  sleep_seconds(profile_.predict_spike_s);
}

bool ChaosInjector::on_swap_bytes(std::vector<char>& bytes) {
  if (bytes.empty() || !fire(profile_.corrupt_swap_probability)) return false;
  const scwc::LockGuard lock(mutex_);
  const auto index =
      static_cast<std::size_t>(rng_.uniform_index(bytes.size()));
  // Flip a bit somewhere past the magic so the failure mode varies between
  // "bad header" and "bad payload" across draws; index 0 would always be
  // caught by the magic check alone.
  bytes[index] = static_cast<char>(
      static_cast<unsigned char>(bytes[index]) ^
      static_cast<unsigned char>(1U << rng_.uniform_index(8)));
  ++counts_.corrupted_swaps;
  return true;
}

void ChaosInjector::starve(ThreadPool& pool) {
  if (!fire(profile_.starve_probability)) return;
  {
    const scwc::LockGuard lock(mutex_);
    ++counts_.starvation_bursts;
  }
  const double nap = profile_.starve_task_s;
  for (std::size_t i = 0; i < profile_.starve_tasks; ++i) {
    // Best effort: if the pool queue is at capacity the hog is refused,
    // which is itself back-pressure — exactly the condition being tested.
    (void)pool.try_submit([nap] { sleep_seconds(nap); }, 64);
  }
}

ChaosCounts ChaosInjector::counts() const {
  const scwc::LockGuard lock(mutex_);
  return counts_;
}

}  // namespace scwc::serve
