// Seeded fault injection for the serving stack (chaos testing).
//
// FaultInjector (src/robust/fault.*) corrupts the *data* a model sees;
// ChaosInjector breaks the *machinery* that serves it: the flusher thread
// stalls, cut batches are delayed or dropped before dispatch, the predict
// path gains latency spikes, bundle bytes are corrupted on their way into a
// hot swap, and the worker pool is starved by useless blocking tasks. Each
// family is driven by an explicit probability so bench/serve_chaos.cpp can
// sweep one fault class at a time, and every draw comes from one seeded
// scwc::Rng so a chaotic run replays bit-for-bit.
//
// The injector is armed explicitly (set_armed): a scenario warms the
// service up with chaos disarmed, arms it for the fault window, then
// disarms it and watches the breaker recover. All hooks are thread-safe —
// they are called from the flusher thread, pool workers and the swap path
// concurrently.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace scwc::serve {

/// Per-family injection knobs. All probabilities are per-event (per batch
/// cut, per dispatch, per predict, per swap); 0 disables the family.
/// `at_severity` gives a calibrated mix for a single scalar knob.
struct ChaosProfile {
  double flusher_stall_probability = 0.0;  ///< per batch cut
  double flusher_stall_s = 0.05;           ///< stall length when it fires

  double batch_delay_probability = 0.0;    ///< per dispatched batch
  double batch_delay_s = 0.02;             ///< added latency when it fires

  double batch_drop_probability = 0.0;     ///< per dispatched batch — the
                                           ///< batch is lost before predict

  double predict_spike_probability = 0.0;  ///< per executed batch
  double predict_spike_s = 0.03;           ///< latency spike when it fires

  double corrupt_swap_probability = 0.0;   ///< per bundle swap attempt

  double starve_probability = 0.0;         ///< per starve() poll
  double starve_task_s = 0.05;             ///< how long each hog task sleeps
  std::size_t starve_tasks = 4;            ///< hog tasks injected per firing

  /// Calibrated mix for severity in [0, 1]: 0 injects nothing, 1 stalls,
  /// delays, drops, spikes, corrupts and starves aggressively.
  static ChaosProfile at_severity(double severity);

  /// True when every probability is zero (all hooks are then no-ops).
  [[nodiscard]] bool empty() const noexcept;
};

/// What the injector actually did (cumulative since construction).
struct ChaosCounts {
  std::size_t flusher_stalls = 0;
  std::size_t batch_delays = 0;
  std::size_t batch_drops = 0;
  std::size_t predict_spikes = 0;
  std::size_t corrupted_swaps = 0;
  std::size_t starvation_bursts = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return flusher_stalls + batch_delays + batch_drops + predict_spikes +
           corrupted_swaps + starvation_bursts;
  }
};

/// Human-readable one-line summary ("stalls=3 drops=1 ...").
std::string to_string(const ChaosCounts& counts);

/// What should happen to a batch at dispatch time.
enum class BatchFate {
  kProceed = 0,  ///< dispatch normally (a delay may already have been paid)
  kDrop,         ///< lose the batch — the service sheds it with kInternal
};

/// Seeded machinery-fault injector; see the file header for the model.
class ChaosInjector {
 public:
  ChaosInjector(ChaosProfile profile, std::uint64_t seed);

  [[nodiscard]] const ChaosProfile& profile() const noexcept {
    return profile_;
  }

  /// Arms/disarms injection. Disarmed, every hook is a guaranteed no-op
  /// (the Rng is not advanced, so the armed phase replays identically
  /// whatever happened around it).
  void set_armed(bool armed) noexcept;
  [[nodiscard]] bool armed() const noexcept;

  /// Flusher hook: may sleep the flusher thread (stalled-flusher fault).
  void on_flusher_cut();

  /// Dispatch hook: may sleep (delayed batch) and/or condemn the batch.
  [[nodiscard]] BatchFate on_batch_dispatch();

  /// Predict hook: may sleep on the worker thread (latency spike).
  void on_predict_start();

  /// Swap hook: may corrupt `bytes` in place (one random byte flipped)
  /// before they are parsed into a bundle. Returns true when it did.
  bool on_swap_bytes(std::vector<char>& bytes);

  /// Starvation hook: when it fires, floods `pool` with starve_tasks
  /// blocking sleepers through try_submit. Call it from the load loop.
  void starve(ThreadPool& pool);

  [[nodiscard]] ChaosCounts counts() const;

 private:
  /// One armed Bernoulli draw under the mutex; false when disarmed.
  bool fire(double probability);

  const ChaosProfile profile_;
  mutable Mutex mutex_{"serve.chaos"};
  Rng rng_ SCWC_GUARDED_BY(mutex_);
  bool armed_ SCWC_GUARDED_BY(mutex_) = false;
  ChaosCounts counts_ SCWC_GUARDED_BY(mutex_);
};

}  // namespace scwc::serve
