#include "serve/retry.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"

namespace scwc::serve {

std::optional<ServeResult> get_within(std::future<ServeResult>& future,
                                      double timeout_s) {
  const auto status =
      future.wait_for(std::chrono::duration<double>(timeout_s));
  if (status != std::future_status::ready) return std::nullopt;
  // This IS the deadline wrapper the rule points everyone at; the wait_for
  // above already bounded the get.
  return future.get();  // scwc-lint: allow(no-unchecked-future-get)
}

ServeResult retry_with_backoff(
    const RetryPolicy& policy, Rng& rng,
    const std::function<std::optional<ServeResult>(double)>& attempt) {
  auto& reg = obs::MetricsRegistry::global();
  obs::CounterHandle retries =
      reg.counter("scwc_serve_client_retries_total");
  obs::CounterHandle recovered =
      reg.counter("scwc_serve_client_retry_recovered_total");

  const auto start = std::chrono::steady_clock::now();
  const auto budget_left = [&]() {
    return policy.budget_s -
           obs::seconds_between(start, std::chrono::steady_clock::now());
  };

  ServeResult last;
  last.accepted = false;
  last.reject_reason = RejectReason::kDeadlineExceeded;
  double backoff = policy.initial_backoff_s;
  const std::size_t attempts = std::max<std::size_t>(1, policy.max_attempts);
  for (std::size_t try_index = 0; try_index < attempts; ++try_index) {
    if (try_index > 0) {
      const double lo = std::max(0.0, 1.0 - policy.jitter);
      const double hi = 1.0 + policy.jitter;
      const double sleep_s = backoff * rng.uniform(lo, hi);
      if (sleep_s >= budget_left()) break;  // would blow the budget: give up
      std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
      backoff = std::min(backoff * policy.backoff_multiplier,
                         policy.max_backoff_s);
      retries.inc();
    }
    const double wait_s = budget_left();
    if (wait_s <= 0.0) break;
    std::optional<ServeResult> result = attempt(wait_s);
    if (!result.has_value()) break;  // budget exhausted mid-flight
    last = std::move(*result);
    if (last.accepted || !retryable(last.reject_reason)) {
      if (last.accepted && try_index > 0) recovered.inc();
      return last;
    }
  }
  if (last.accepted) return last;
  // Out of attempts or budget: report the final shed as a deadline miss
  // when the last observed reason was retryable (the caller could not wait
  // any longer), else pass the terminal reason through.
  if (retryable(last.reject_reason)) {
    last.reject_reason = RejectReason::kDeadlineExceeded;
  }
  return last;
}

ServeResult submit_with_retry(ClassificationService& service,
                              const std::vector<double>& window,
                              std::size_t steps, std::size_t sensors,
                              const RetryPolicy& policy, Rng& rng) {
  return retry_with_backoff(
      policy, rng, [&](double wait_s) -> std::optional<ServeResult> {
        std::future<ServeResult> future = service.submit(window, steps,
                                                         sensors);
        return get_within(future, wait_s);
      });
}

}  // namespace scwc::serve
