#include "serve/window_assembler.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "linalg/matrix.hpp"
#include "robust/robust_window.hpp"
#include "telemetry/gpu_synth.hpp"

namespace scwc::serve {

WindowAssembler::WindowAssembler(WindowAssemblerConfig config)
    : config_(config) {
  SCWC_REQUIRE(config_.window_steps > 0 && config_.sensors > 0,
               "WindowAssembler: window_steps and sensors must be set");
  auto& reg = obs::MetricsRegistry::global();
  obs_samples_ = reg.counter("scwc_serve_assembler_samples_total");
  obs_windows_ = reg.counter("scwc_serve_assembler_windows_total");
  obs_partial_windows_ =
      reg.counter("scwc_serve_assembler_partial_windows_total");
  obs_active_jobs_ = reg.gauge("scwc_serve_assembler_active_jobs");
}

AssembledWindow WindowAssembler::cut_window(std::int64_t job_id,
                                            const JobStream& stream,
                                            std::size_t start,
                                            std::size_t available_steps) const {
  const std::size_t sensors = config_.sensors;
  // Wrap the available rows as a TimeSeries so extraction (including the
  // NaN-padding of an absent tail) goes through the one robust path.
  telemetry::TimeSeries series;
  series.sample_hz = 0.0;  // extraction is offset-based; rate is irrelevant
  series.values = linalg::Matrix(available_steps, sensors);
  const std::size_t first = start - stream.base_step;
  std::copy_n(stream.rows.begin() + static_cast<std::ptrdiff_t>(first * sensors),
              available_steps * sensors, series.values.flat().begin());

  AssembledWindow window;
  window.job_id = job_id;
  window.start_step = start;
  window.values.assign(config_.window_steps * sensors, 0.0);
  window.extraction = robust::robust_extract_window(
      series, 0, config_.window_steps, window.values);
  return window;
}

void WindowAssembler::drain_closed(std::int64_t job_id, JobStream& stream,
                                   std::vector<AssembledWindow>& out) {
  const std::size_t window = config_.window_steps;
  const std::size_t stride = config_.effective_stride();
  while (stream.total_steps >= stream.next_start + window) {
    out.push_back(cut_window(job_id, stream, stream.next_start, window));
    obs_windows_.inc();
    stream.next_start += stride;
  }
  // Trim consumed history: rows before the next window's start can never be
  // read again (overlapping strides keep the shared suffix).
  const std::size_t keep_from = std::min(stream.next_start, stream.total_steps);
  if (keep_from > stream.base_step) {
    const std::size_t drop = keep_from - stream.base_step;
    stream.rows.erase(
        stream.rows.begin(),
        stream.rows.begin() +
            static_cast<std::ptrdiff_t>(drop * config_.sensors));
    stream.base_step = keep_from;
  }
}

std::vector<AssembledWindow> WindowAssembler::push(
    std::int64_t job_id, std::span<const double> sample) {
  return push_block(job_id, sample);
}

std::vector<AssembledWindow> WindowAssembler::push_block(
    std::int64_t job_id, std::span<const double> block) {
  SCWC_REQUIRE(!block.empty() && block.size() % config_.sensors == 0,
               "WindowAssembler: block size must be a non-zero multiple of "
               "the sensor count");
  const std::size_t rows = block.size() / config_.sensors;
  std::vector<AssembledWindow> out;
  {
    const scwc::LockGuard lock(mutex_);
    JobStream& stream = streams_[job_id];
    stream.rows.insert(stream.rows.end(), block.begin(), block.end());
    stream.total_steps += rows;
    drain_closed(job_id, stream, out);
    obs_active_jobs_.set(static_cast<double>(streams_.size()));
  }
  obs_samples_.inc(rows);
  return out;
}

std::vector<AssembledWindow> WindowAssembler::finish(std::int64_t job_id) {
  std::vector<AssembledWindow> out;
  const scwc::LockGuard lock(mutex_);
  const auto it = streams_.find(job_id);
  if (it == streams_.end()) return out;
  JobStream& stream = it->second;
  drain_closed(job_id, stream, out);  // normally a no-op; defensive
  const std::size_t tail = stream.total_steps > stream.next_start
                               ? stream.total_steps - stream.next_start
                               : 0;
  if (config_.min_partial_steps > 0 && tail >= config_.min_partial_steps) {
    out.push_back(cut_window(job_id, stream, stream.next_start, tail));
    obs_windows_.inc();
    obs_partial_windows_.inc();
  }
  streams_.erase(it);
  obs_active_jobs_.set(static_cast<double>(streams_.size()));
  return out;
}

std::size_t WindowAssembler::active_jobs() const {
  const scwc::LockGuard lock(mutex_);
  return streams_.size();
}

std::size_t WindowAssembler::stream_steps(std::int64_t job_id) const {
  const scwc::LockGuard lock(mutex_);
  const auto it = streams_.find(job_id);
  return it == streams_.end() ? 0 : it->second.total_steps;
}

}  // namespace scwc::serve
