// Consistent-hash ring mapping job ids onto shards.
//
// Each shard contributes `vnodes` points on a 64-bit ring; a job id is
// hashed to one point and owned by the first shard point at or after it
// (wrapping). Removing a shard moves ONLY the jobs it owned — the classic
// consistent-hashing property the cluster's rebalance-on-shard-kill
// behaviour rests on: survivors keep their assignments, so a kill reshuffles
// 1/N of the key space instead of all of it.
//
// Pure data structure, deliberately not synchronized: the ShardRouter
// guards its ring with the router-level mutex, and tests drive it
// single-threaded. Deterministic for a given (vnodes, shard-id set), so
// placement is reproducible across runs and processes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

namespace scwc::cluster {

/// splitmix64 finalizer — the ring's point hash and key hash. Statistically
/// strong enough for placement and fully deterministic (no seeding).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

class HashRing {
 public:
  /// `vnodes` points per shard. More vnodes → better balance at the cost
  /// of a larger map; 64 keeps worst-case imbalance under ~30% for small
  /// fleets (test_cluster checks this).
  explicit HashRing(std::size_t vnodes = 64);

  /// Adds a shard's vnodes. Adding an existing shard is a no-op.
  void add_shard(std::uint32_t shard_id);

  /// Removes a shard's vnodes. Unknown shards are a no-op.
  void remove_shard(std::uint32_t shard_id);

  [[nodiscard]] bool contains(std::uint32_t shard_id) const;

  /// The shard owning `job_id`, or nullopt when the ring is empty.
  [[nodiscard]] std::optional<std::uint32_t> owner(std::int64_t job_id) const;

  [[nodiscard]] std::size_t shard_count() const { return shards_.size(); }
  [[nodiscard]] bool empty() const { return shards_.empty(); }
  [[nodiscard]] std::vector<std::uint32_t> shards() const;

 private:
  std::size_t vnodes_;
  std::map<std::uint64_t, std::uint32_t> ring_;  ///< point → shard id
  std::set<std::uint32_t> shards_;
};

}  // namespace scwc::cluster
