// ShardRouter — the cluster front end.
//
// Consistent-hashes job ids onto worker shards (cluster/hash_ring.hpp) and
// speaks SCWCWIRE to each over loopback TCP. One reader thread per shard
// resolves verdict frames back into the promise registered at submit time;
// per-shard in-flight windows are bounded, and every refusal is a typed
// serve::RejectReason so cluster sheds are indistinguishable in shape from
// single-process ones:
//
//   kQueueFull  — the owning shard already has max_inflight_per_shard
//                 windows outstanding (router-level admission)
//   kShardDown  — the owning shard died (EOF / write failure) or the ring
//                 is empty; the ring is rehashed, so a retry lands on a
//                 survivor (retryable, like every transient shed)
//   kShutdown   — the router itself is stopping
//
// Shard death is detected passively (reader EOF, send failure): the shard
// leaves the ring, its in-flight requests fail with kShardDown, and the
// ring rehashes its 1/N of the key space onto survivors — availability for
// everyone else is untouched, which bench/cluster_throughput measures.
//
// Bundle distribution: push_bundle() streams a serialized bundle to every
// live shard (SwapBegin/Chunk*/Commit) and collects per-shard acks. If any
// shard refuses — corrupt bytes, loader rejection — the router sends
// SwapAbort to every shard that HAD committed, rolling the fleet back to
// version agreement; the report carries each shard's final active version.
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/hash_ring.hpp"
#include "common/mutex.hpp"
#include "common/rng.hpp"
#include "common/thread_annotations.hpp"
#include "net/socket.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/request_trace.hpp"
#include "serve/retry.hpp"
#include "serve/serve_types.hpp"

namespace scwc::serve {
class AuditLogger;  // serve/audit.hpp
}

namespace scwc::cluster {

struct RouterConfig {
  std::size_t vnodes = 64;             ///< ring points per shard
  std::size_t max_inflight_per_shard = 1024;
  double connect_deadline_s = 5.0;     ///< worker startup grace
  double hello_timeout_s = 5.0;
  double swap_ack_timeout_s = 30.0;
  /// Forwarded per submit as the worker-side latency budget; 0 = none.
  double default_deadline_s = 0.0;
  /// Clock-offset handshake rounds per v2 shard (NTP-style: the offset of
  /// the minimum-RTT round wins). 0 disables the handshake.
  std::size_t clock_sync_pings = 5;
  /// Router-side request tracing: every routed window keeps the router's
  /// trace id, and sampled requests keep the full 7-phase record
  /// (admission/route/wire_send/worker queue/transform/predict/wire_recv).
  obs::RequestTracerConfig trace;
  /// Optional router-side audit log; records carry shard_id. Must outlive
  /// the router.
  serve::AuditLogger* audit = nullptr;
};

/// Outcome of one shard's part of a bundle push.
struct SwapOutcome {
  std::uint32_t shard_id = 0;
  bool ok = false;                 ///< this shard acked the commit
  bool rolled_back = false;        ///< abort sent (sibling failed)
  std::string active_version;      ///< what the shard serves now
  std::string message;
};

struct SwapReport {
  bool ok = false;  ///< every live shard committed
  std::vector<SwapOutcome> shards;
};

/// Point-in-time view of one shard, from the router's perspective.
struct ShardStatus {
  std::uint32_t shard_id = 0;
  std::uint16_t port = 0;
  bool up = false;
  std::size_t inflight = 0;
  std::size_t window_steps = 0;  ///< geometry from the hello handshake
  std::size_t sensors = 0;
  std::string model_version;  ///< from the hello / last swap ack
  std::uint16_t wire_version = 0;  ///< negotiated protocol version
  /// Estimated worker-minus-router monotonic clock offset (ns) from the
  /// min-RTT ping handshake; 0 for v1 shards (no handshake).
  std::int64_t clock_offset_ns = 0;
  std::uint64_t clock_rtt_ns = 0;  ///< RTT of the winning handshake round
};

class ShardRouter {
 public:
  explicit ShardRouter(RouterConfig config = {});
  ~ShardRouter();

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  /// Connects to a worker on 127.0.0.1:`port` (retrying until the connect
  /// deadline), performs the hello handshake and adds the shard to the
  /// ring. Returns the shard id the worker announced. Throws scwc::Error
  /// when the worker cannot be reached, the handshake fails, or the id is
  /// already connected.
  std::uint32_t add_shard(std::uint16_t port);

  /// Routes one window to the shard owning `job_id`. The future always
  /// becomes ready: with the worker's verdict, or with a typed router shed
  /// (kQueueFull / kShardDown / kShutdown — see file header).
  [[nodiscard]] std::future<serve::ServeResult> submit(
      std::int64_t job_id, std::vector<double> window, std::size_t steps,
      std::size_t sensors);

  /// Blocking client helper: submit + bounded wait, retrying retryable
  /// sheds under `policy` through the shared jittered-backoff core — after
  /// a shard death the retry rehashes onto a survivor. Never call it from
  /// a reader thread.
  [[nodiscard]] serve::ServeResult submit_and_wait(
      std::int64_t job_id, const std::vector<double>& window,
      std::size_t steps, std::size_t sensors,
      const serve::RetryPolicy& policy, Rng& rng);

  /// Streams `bundle_bytes` (a serialized SCWCBNDL, e.g. from
  /// serve::save_bundle) to every live shard and two-phase-commits the
  /// swap; see file header for the rollback protocol.
  SwapReport push_bundle(const std::string& bundle_bytes,
                         const std::string& version);

  /// Requests fresh serving counters from one shard (kStats round-trip).
  [[nodiscard]] std::optional<net::StatsReplyFrame> fetch_stats(
      std::uint32_t shard_id, double timeout_s = 5.0);

  /// Pulls one shard's full metrics snapshot over the wire (kMetricsScrape
  /// round-trip; v2 shards only — nullopt for v1 peers and dead shards).
  [[nodiscard]] std::optional<net::MetricsReplyFrame> fetch_metrics(
      std::uint32_t shard_id, double timeout_s = 5.0);

  /// Starts the background aggregation poller: every `period_s` it pulls
  /// each live v2 shard's metrics and retains the latest reply for
  /// fleet_metrics_text(). Idempotent; stop() joins the thread.
  void start_metrics_poll(double period_s);

  /// Prometheus text exposition of the whole fleet: this process's own
  /// registry first (router gauges/counters, per-shard rolling latency),
  /// then every polled worker series re-exported with a shard="N" label,
  /// plus the router's live per-shard inflight/up gauges. Deterministic
  /// for a fixed set of polled snapshots.
  [[nodiscard]] std::string fleet_metrics_text() const;

  /// JSON health view for the /shards endpoint: one object per shard with
  /// id, port, up, inflight, wire version, clock offset and model version.
  [[nodiscard]] obs::Json shards_health_json() const;

  /// The shard `job_id` would be routed to right now.
  [[nodiscard]] std::optional<std::uint32_t> owner(std::int64_t job_id) const;
  [[nodiscard]] std::size_t live_shards() const;
  [[nodiscard]] std::vector<ShardStatus> shards() const;

  /// Router-side request tracer (drain() records after stop() for export).
  [[nodiscard]] obs::RequestTracer& tracer() noexcept { return tracer_; }

  /// Asks every live worker process to exit (kShutdown frame). The workers
  /// acknowledge by closing; the router marks them down as they go.
  void shutdown_workers();

  /// Fails all in-flight requests with kShutdown and closes every
  /// connection. Idempotent; the destructor calls it.
  void stop();

 private:
  /// One request the reader still owes a verdict.
  struct PendingRequest {
    std::promise<serve::ServeResult> promise;
    std::chrono::steady_clock::time_point submitted_at;
    std::uint64_t trace_id = 0;  ///< router-issued, propagated on v2 wires
    bool trace_sampled = false;
    std::int64_t job_id = -1;
    // Router-side phase stamps, merged with the worker's phase breakdown
    // when the verdict lands. wire_send_s is patched in after the write
    // completes; if the verdict wins that race the send time simply folds
    // into the wire_recv residual.
    double admission_s = 0.0;
    double route_s = 0.0;
    double wire_send_s = 0.0;
  };

  /// Per-shard connection state. The reader thread is the only frame
  /// consumer; submit paths write frames under write_mutex.
  struct ShardConn {
    ShardConn(std::uint32_t id, std::uint16_t p, net::Socket s)
        : shard_id(id), port(p), sock(std::move(s)) {}

    const std::uint32_t shard_id;
    const std::uint16_t port;
    // Written by submitters under write_mutex; shut down cross-thread by
    // stop()/mark_down. The fd lifecycle is the synchronization (shutdown
    // unblocks the reader; close happens after the join).
    net::Socket sock;  // scwc-lint: allow(guarded-field-coverage)
    Mutex write_mutex{"cluster.router.write"};
    Mutex pending_mutex{"cluster.router.pending"};
    std::unordered_map<std::uint64_t, PendingRequest> pending
        SCWC_GUARDED_BY(pending_mutex);
    // Rendezvous for the control-plane replies the reader routes here.
    Mutex control_mutex{"cluster.router.control"};
    CondVar control_cv;
    std::optional<net::SwapAckFrame> swap_ack
        SCWC_GUARDED_BY(control_mutex);
    std::optional<net::StatsReplyFrame> stats_reply
        SCWC_GUARDED_BY(control_mutex);
    std::optional<net::MetricsReplyFrame> metrics_reply
        SCWC_GUARDED_BY(control_mutex);
    std::atomic<std::size_t> inflight{0};
    std::atomic<bool> up{true};
    // Hello metadata: written once during add_shard, before the reader
    // spawns or the shard is published — immutable afterwards.
    net::HelloFrame hello;  // scwc-lint: allow(guarded-field-coverage)
    // Negotiated in add_shard (min of peer hello version and ours) before
    // publication — immutable afterwards, like hello.
    std::uint16_t wire_version = net::kWireVersionMin;  // scwc-lint: allow(guarded-field-coverage)
    // Min-RTT clock handshake result; written once in add_shard.
    std::int64_t clock_offset_ns = 0;  // scwc-lint: allow(guarded-field-coverage)
    std::uint64_t clock_rtt_ns = 0;  // scwc-lint: allow(guarded-field-coverage)
    // Per-shard rolling request latency, registered in add_shard; the
    // handle is internally synchronized.
    obs::RollingHistogramHandle rolling_latency;  // scwc-lint: allow(guarded-field-coverage)
    // Set once at spawn; joined by stop().
    std::thread reader;  // scwc-lint: allow(guarded-field-coverage)
  };

  void reader_loop(const std::shared_ptr<ShardConn>& conn);
  /// Resolves the shard owning `job_id`; nullptr when the ring is empty.
  [[nodiscard]] std::shared_ptr<ShardConn> route(std::int64_t job_id) const;
  /// Marks a shard dead: out of the ring, pending requests failed with
  /// `reason`, control waiters woken. Safe to call repeatedly.
  void mark_down(ShardConn& conn, serve::RejectReason reason);
  /// A ready future carrying a typed shed (also counts it and writes the
  /// tracer/audit record; `shard_id` names the owner if one was chosen).
  [[nodiscard]] std::future<serve::ServeResult> shed(
      serve::RejectReason reason, std::uint64_t trace_id, bool sampled,
      std::int64_t job_id, std::optional<std::uint32_t> shard_id,
      std::chrono::steady_clock::time_point started,
      const obs::RequestPhases& phases);
  /// Streams one bundle push to one shard and waits for its ack.
  [[nodiscard]] SwapOutcome push_to_shard(ShardConn& conn,
                                          const std::string& bundle_bytes,
                                          const std::string& version);
  /// Sends SwapAbort and waits for the rollback ack.
  void abort_on_shard(ShardConn& conn, SwapOutcome& outcome,
                      const std::string& reason);
  [[nodiscard]] std::optional<net::SwapAckFrame> wait_swap_ack(
      ShardConn& conn, double timeout_s);
  bool send(ShardConn& conn, net::FrameType type, std::string_view payload);
  /// Min-RTT ping/pong clock handshake on a not-yet-published connection
  /// (the socket is exclusively owned and its io timeout still active).
  void sync_clock(ShardConn& conn);
  void metrics_poll_loop(double period_s);
  /// Records one finished routed request into the tracer and audit log,
  /// mirroring ClassificationService::note_verdict's record shape.
  void record_request(std::uint64_t trace_id, bool sampled,
                      std::int64_t job_id,
                      std::optional<std::uint32_t> shard_id,
                      std::chrono::steady_clock::time_point started,
                      const serve::ServeResult& result);

  const RouterConfig config_;

  mutable Mutex ring_mutex_{"cluster.router.ring"};
  HashRing ring_ SCWC_GUARDED_BY(ring_mutex_);
  std::map<std::uint32_t, std::shared_ptr<ShardConn>> conns_
      SCWC_GUARDED_BY(ring_mutex_);
  bool stopped_ SCWC_GUARDED_BY(ring_mutex_) = false;

  std::atomic<std::uint64_t> next_request_id_{1};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> verdicts_{0};
  std::atomic<std::uint64_t> orphan_verdicts_{0};

  // Internally synchronized (own mutex + atomics).
  obs::RequestTracer tracer_;  // scwc-lint: allow(guarded-field-coverage)

  // Latest polled per-shard metrics snapshot, shard id → reply. Kept
  // across shard death so a final scrape survives into fleet_metrics_text.
  mutable Mutex metrics_mutex_{"cluster.router.metrics"};
  std::map<std::uint32_t, net::MetricsReplyFrame> polled_metrics_
      SCWC_GUARDED_BY(metrics_mutex_);
  bool poll_stop_ SCWC_GUARDED_BY(metrics_mutex_) = false;
  CondVar poll_cv_;
  std::thread poll_thread_;  // scwc-lint: allow(guarded-field-coverage)

  obs::CounterHandle obs_submitted_;
  obs::CounterHandle obs_verdicts_;
  obs::CounterHandle obs_shed_queue_full_;
  obs::CounterHandle obs_shed_shard_down_;
  obs::CounterHandle obs_shed_shutdown_;
  obs::CounterHandle obs_shard_deaths_;
  obs::CounterHandle obs_swap_pushes_;
  obs::CounterHandle obs_swap_rollbacks_;
  obs::CounterHandle obs_wire_tx_frames_;
  obs::CounterHandle obs_wire_tx_bytes_;
  obs::CounterHandle obs_wire_rx_frames_;
  obs::CounterHandle obs_wire_rx_bytes_;
  /// Submits sent to v1 shards without a trace context — the router-side
  /// "degraded to untraced operation" signal the compat tests assert on.
  obs::CounterHandle obs_untraced_submits_;
  /// v1 verdicts carrying no worker phase breakdown.
  obs::CounterHandle obs_unphased_verdicts_;
  obs::GaugeHandle obs_ring_size_;
  obs::GaugeHandle obs_swap_phase_;
};

}  // namespace scwc::cluster
