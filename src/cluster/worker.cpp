#include "cluster/worker.hpp"

#include <chrono>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/wire.hpp"
#include "obs/request_trace.hpp"
#include "serve/bundle_io.hpp"
#include "serve/retry.hpp"

namespace scwc::cluster {

ClusterWorker::ClusterWorker(serve::ModelRegistry& registry,
                             WorkerConfig config)
    : registry_(registry), config_(std::move(config)) {
  service_ = std::make_unique<serve::ClassificationService>(
      registry_, config_.service);
  obs_untraced_submits_ = obs::MetricsRegistry::global().counter(
      "scwc_cluster_worker_untraced_submits_total");
}

ClusterWorker::~ClusterWorker() { stop(); }

void ClusterWorker::start() {
  {
    LockGuard lock(mutex_);
    SCWC_REQUIRE(!started_, "ClusterWorker: already started");
    SCWC_REQUIRE(!stopped_, "ClusterWorker: already stopped");
    started_ = true;
  }
  listener_.listen(config_.port);
  accept_thread_ = std::thread([this] { accept_loop(); });
  SCWC_LOG_INFO("cluster worker shard " << config_.shard_id
                << " listening on 127.0.0.1:" << listener_.port());
}

void ClusterWorker::stop() {
  std::vector<std::unique_ptr<Connection>> conns;
  {
    LockGuard lock(mutex_);
    if (stopped_) return;
    stopped_ = true;
    shutdown_requested_ = true;
    conns.swap(connections_);
  }
  shutdown_cv_.notify_all();
  listener_.shutdown_now();
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.close();
  for (auto& conn : conns) {
    conn->sock.shutdown_now();
    {
      LockGuard lock(conn->queue_mutex);
      conn->closing = true;
    }
    conn->queue_cv.notify_all();
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->responder.joinable()) conn->responder.join();
    conn->sock.close();
  }
  service_->stop();
}

void ClusterWorker::wait_shutdown() {
  LockGuard lock(mutex_);
  while (!shutdown_requested_) shutdown_cv_.wait(mutex_);
}

WorkerCounters ClusterWorker::counters() const noexcept {
  WorkerCounters c;
  c.submitted = submitted_.load();
  c.answered = answered_.load();
  c.abstained = abstained_.load();
  c.shed = shed_.load();
  c.swaps = swaps_.load();
  return c;
}

void ClusterWorker::accept_loop() {
  while (true) {
    net::Socket sock = listener_.accept();
    if (!sock.valid()) return;  // stop() shut the listener down
    auto conn = std::make_unique<Connection>(std::move(sock));
    Connection& ref = *conn;
    {
      LockGuard lock(mutex_);
      if (stopped_) return;
      connections_.push_back(std::move(conn));
    }
    net::HelloFrame hello;
    hello.shard_id = config_.shard_id;
    hello.window_steps =
        static_cast<std::uint32_t>(config_.service.assembler.window_steps);
    hello.sensors =
        static_cast<std::uint32_t>(config_.service.assembler.sensors);
    if (const auto bundle = registry_.current()) {
      hello.model_version = bundle->version();
    }
    if (!send(ref, net::FrameType::kHello, net::encode_hello(hello))) {
      continue;  // peer vanished before the handshake; reader will reap it
    }
    ref.reader = std::thread([this, &ref] { reader_loop(ref); });
    ref.responder = std::thread([this, &ref] { responder_loop(ref); });
  }
}

void ClusterWorker::reader_loop(Connection& conn) {
  try {
    while (std::optional<net::Frame> frame = net::read_frame(conn.sock)) {
      switch (frame->type) {
        case net::FrameType::kSubmitWindow:
          handle_submit(conn, *frame);
          break;
        case net::FrameType::kTelemetryRow:
          handle_telemetry(conn, frame->payload);
          break;
        case net::FrameType::kPing:
          handle_ping(conn, *frame);
          break;
        case net::FrameType::kMetricsScrape:
          send_metrics(conn);
          break;
        case net::FrameType::kSwapBegin:
          handle_swap_begin(conn, frame->payload);
          break;
        case net::FrameType::kSwapChunk:
          handle_swap_chunk(conn, frame->payload);
          break;
        case net::FrameType::kSwapCommit:
          handle_swap_commit(conn, frame->payload);
          break;
        case net::FrameType::kSwapAbort:
          handle_swap_abort(conn, frame->payload);
          break;
        case net::FrameType::kStats:
          send_stats(conn);
          break;
        case net::FrameType::kShutdown: {
          SCWC_LOG_INFO("cluster worker shard "
                        << config_.shard_id
                        << ": shutdown requested by router");
          {
            LockGuard lock(mutex_);
            shutdown_requested_ = true;
          }
          shutdown_cv_.notify_all();
          break;
        }
        default:
          break;  // kPong / kError / unexpected-but-valid types: ignore
      }
    }
  } catch (const scwc::Error& e) {
    // Protocol violation (bad magic, CRC, malformed payload): report it on
    // the wire if the peer still listens, then drop the connection — a
    // corrupt peer must never take the worker down.
    net::ErrorFrame err;
    err.code = 1;
    err.message = e.what();
    (void)send(conn, net::FrameType::kError, net::encode_error(err));
    SCWC_LOG_WARN("cluster worker shard "
                  << config_.shard_id
                  << ": dropping connection after protocol error: "
                  << e.what());
  }
  conn.sock.shutdown_now();
  {
    LockGuard lock(conn.queue_mutex);
    conn.closing = true;
  }
  conn.queue_cv.notify_all();
}

void ClusterWorker::responder_loop(Connection& conn) {
  while (true) {
    PendingVerdict pending;
    {
      LockGuard lock(conn.queue_mutex);
      while (conn.queue.empty() && !conn.closing) {
        conn.queue_cv.wait(conn.queue_mutex);
      }
      if (conn.queue.empty()) return;  // closing, fully drained
      pending = std::move(conn.queue.front());
      conn.queue.pop_front();
    }
    serve::ServeResult result;
    std::optional<serve::ServeResult> ready =
        serve::get_within(pending.result, config_.verdict_wait_s);
    if (ready.has_value()) {
      result = std::move(*ready);
    } else {
      // The promise side is wedged or lost — answer with a typed shed so
      // the router never waits on a verdict that will not come.
      result.accepted = false;
      result.reject_reason = serve::RejectReason::kInternal;
    }
    if (result.accepted) {
      answered_.fetch_add(1);
      if (result.prediction.abstained) abstained_.fetch_add(1);
    } else {
      shed_.fetch_add(1);
    }
    const net::VerdictFrame verdict = make_verdict(pending, result);
    if (!send(conn, net::FrameType::kVerdict,
              net::encode_verdict(verdict, pending.wire_version),
              pending.wire_version)) {
      // Peer gone: keep draining so queued futures are still consumed.
      continue;
    }
  }
}

bool ClusterWorker::send(Connection& conn, net::FrameType type,
                         std::string_view payload, std::uint16_t version) {
  LockGuard lock(conn.write_mutex);
  return net::write_frame(conn.sock, type, payload, version);
}

void ClusterWorker::enqueue(Connection& conn, PendingVerdict pending) {
  {
    LockGuard lock(conn.queue_mutex);
    if (conn.closing) return;  // future is dropped; promise side still runs
    conn.queue.push_back(std::move(pending));
  }
  conn.queue_cv.notify_one();
}

void ClusterWorker::handle_submit(Connection& conn,
                                  const net::Frame& wire_frame) {
  net::SubmitWindowFrame frame =
      net::decode_submit_window(wire_frame.payload, wire_frame.version);
  submitted_.fetch_add(1);
  if (frame.trace_id == 0) {
    // v1 router (or an untraced v2 submit): serve normally under a local
    // trace id — degraded to untraced operation, counted, never an error.
    obs_untraced_submits_.inc();
  }
  PendingVerdict pending;
  pending.request_id = frame.request_id;
  pending.job_id = frame.job_id;
  pending.wire_version = wire_frame.version;
  pending.submitted_at = std::chrono::steady_clock::now();
  auto deadline = std::chrono::steady_clock::time_point::max();
  if (frame.deadline_ns > 0) {
    deadline =
        pending.submitted_at + std::chrono::nanoseconds(frame.deadline_ns);
  } else if (service_->config().default_deadline_s > 0.0) {
    deadline = pending.submitted_at +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   std::chrono::duration<double>(
                       service_->config().default_deadline_s));
  }
  pending.result = service_->submit_with_trace(
      std::move(frame.values), frame.steps, frame.sensors, deadline,
      frame.trace_id, frame.trace_sampled);
  enqueue(conn, std::move(pending));
}

void ClusterWorker::handle_telemetry(Connection& conn,
                                     std::string_view payload) {
  const net::TelemetryRowFrame frame = net::decode_telemetry_row(payload);
  std::vector<serve::PendingWindow> windows =
      service_->ingest(frame.job_id, frame.values);
  for (serve::PendingWindow& w : windows) {
    submitted_.fetch_add(1);
    PendingVerdict pending;
    // Stream-driven windows have no router request id; the high bit marks
    // them so the router can route these verdicts to its stream sink.
    pending.request_id = (1ULL << 63) | conn.stream_seq++;
    pending.job_id = w.job_id;
    pending.submitted_at = std::chrono::steady_clock::now();
    pending.result = std::move(w.result);
    enqueue(conn, std::move(pending));
  }
}

void ClusterWorker::handle_ping(Connection& conn,
                                const net::Frame& wire_frame) {
  if (wire_frame.version < 2) {
    // v1 contract: the pong payload is the ping payload, verbatim.
    send(conn, net::FrameType::kPong, wire_frame.payload, wire_frame.version);
    return;
  }
  const net::PingFrame ping = net::decode_ping(wire_frame.payload);
  net::PongFrame pong;
  pong.nonce = ping.nonce;
  // Our monotonic clock, stamped as late as possible so the router's
  // NTP-style offset estimate sees minimal serialization delay.
  pong.t_mono_ns = obs::steady_ns();
  send(conn, net::FrameType::kPong,
       net::encode_pong(pong, wire_frame.version), wire_frame.version);
}

void ClusterWorker::handle_swap_begin(Connection& conn,
                                      std::string_view payload) {
  const net::SwapBeginFrame frame = net::decode_swap_begin(payload);
  SCWC_REQUIRE(frame.total_bytes <= net::kMaxSwapBytes,
               "swap_begin: bundle larger than kMaxSwapBytes");
  conn.swap_version = frame.version;
  conn.swap_total = frame.total_bytes;
  conn.swap_buffer.clear();
  conn.swap_buffer.reserve(static_cast<std::size_t>(frame.total_bytes));
  conn.swap_active = true;
}

void ClusterWorker::handle_swap_chunk(Connection& conn,
                                      std::string_view payload) {
  const net::SwapChunkFrame frame = net::decode_swap_chunk(payload);
  SCWC_REQUIRE(conn.swap_active, "swap_chunk: no swap in progress");
  SCWC_REQUIRE(frame.offset == conn.swap_buffer.size(),
               "swap_chunk: out-of-order chunk");
  SCWC_REQUIRE(frame.offset + frame.bytes.size() <= conn.swap_total,
               "swap_chunk: bytes beyond the announced total");
  conn.swap_buffer += frame.bytes;
}

void ClusterWorker::handle_swap_commit(Connection& conn,
                                       std::string_view payload) {
  const net::SwapCommitFrame frame = net::decode_swap_commit(payload);
  net::SwapAckFrame ack;
  if (!conn.swap_active) {
    ack.message = "no swap in progress";
  } else if (conn.swap_buffer.size() != conn.swap_total) {
    ack.message = "incomplete bundle stream";
  } else if (net::crc32(conn.swap_buffer) != frame.crc32) {
    ack.message = "bundle CRC mismatch";
  } else {
    std::istringstream is(conn.swap_buffer);
    // try_swap_from_stream is failure-isolating: a corrupt bundle leaves
    // the registry (and serving) exactly as it was.
    const auto bundle = serve::try_swap_from_stream(registry_, is);
    if (bundle != nullptr) {
      ack.ok = true;
      swaps_.fetch_add(1);
      SCWC_LOG_INFO("cluster worker shard "
                    << config_.shard_id << ": swapped to bundle '"
                    << bundle->version() << "'");
    } else {
      ack.message = "bundle rejected by loader";
    }
  }
  conn.swap_active = false;
  conn.swap_buffer.clear();
  conn.swap_buffer.shrink_to_fit();
  if (const auto current = registry_.current()) {
    ack.active_version = current->version();
  }
  send(conn, net::FrameType::kSwapAck, net::encode_swap_ack(ack));
}

void ClusterWorker::handle_swap_abort(Connection& conn,
                                      std::string_view payload) {
  const net::SwapAbortFrame frame = net::decode_swap_abort(payload);
  conn.swap_active = false;
  conn.swap_buffer.clear();
  net::SwapAckFrame ack;
  // Roll back one activation; a worker that never committed the push (its
  // own commit failed, or it never saw one) has nothing to undo and acks
  // with its unchanged version.
  const auto restored = registry_.rollback();
  ack.ok = true;
  ack.message = restored != nullptr ? "rolled back" : "nothing to roll back";
  if (const auto current = registry_.current()) {
    ack.active_version = current->version();
  }
  SCWC_LOG_INFO("cluster worker shard "
                << config_.shard_id << ": swap abort (" << frame.reason
                << ") → serving '" << ack.active_version << "'");
  send(conn, net::FrameType::kSwapAck, net::encode_swap_ack(ack));
}

void ClusterWorker::send_stats(Connection& conn) {
  net::StatsReplyFrame stats;
  stats.submitted = submitted_.load();
  stats.answered = answered_.load();
  stats.abstained = abstained_.load();
  stats.shed = shed_.load();
  stats.swaps = swaps_.load();
  if (const auto bundle = registry_.current()) {
    stats.model_version = bundle->version();
  }
  send(conn, net::FrameType::kStatsReply, net::encode_stats_reply(stats));
}

void ClusterWorker::send_metrics(Connection& conn) {
  // Condense the process-wide registry snapshot: counters and gauges
  // verbatim, rolling histograms as quantile summaries (the router
  // re-exports quantiles as labeled gauges; full buckets stay local).
  // Entry caps match the wire caps, truncating deterministically (the
  // registry orders snapshots by name).
  const obs::MetricsSnapshot snap = obs::MetricsRegistry::global().snapshot();
  net::MetricsReplyFrame reply;
  for (const auto& [name, value] : snap.counters) {
    if (reply.counters.size() >= net::kMaxMetricsEntries) break;
    reply.counters.emplace_back(name, value);
  }
  for (const auto& [name, value] : snap.gauges) {
    if (reply.gauges.size() >= net::kMaxMetricsEntries) break;
    reply.gauges.emplace_back(name, value);
  }
  for (const auto& roll : snap.rolling) {
    if (reply.rolling.size() >= net::kMaxMetricsEntries) break;
    net::MetricsRollingEntry e;
    e.name = roll.name;
    e.count = roll.count;
    e.p50 = roll.p50;
    e.p90 = roll.p90;
    e.p99 = roll.p99;
    reply.rolling.push_back(std::move(e));
  }
  send(conn, net::FrameType::kMetricsReply, net::encode_metrics_reply(reply));
}

net::VerdictFrame ClusterWorker::make_verdict(
    const PendingVerdict& pending, const serve::ServeResult& result) const {
  net::VerdictFrame v;
  v.request_id = pending.request_id;
  v.trace_id = result.trace_id;
  v.job_id = pending.job_id;
  v.accepted = result.accepted;
  v.reject_reason = static_cast<std::uint8_t>(result.reject_reason);
  v.degrade_level = static_cast<std::uint8_t>(result.degrade_level);
  v.abstained = result.prediction.abstained;
  v.abstain_reason = static_cast<std::uint8_t>(result.prediction.reason);
  v.label = result.prediction.label;
  v.batch_size = static_cast<std::uint32_t>(result.batch_size);
  v.quality = result.prediction.report.quality();
  v.worker_latency_s = obs::seconds_between(pending.submitted_at,
                                            std::chrono::steady_clock::now());
  v.missing_values =
      static_cast<std::uint32_t>(result.prediction.report.missing_values);
  v.repaired_values =
      static_cast<std::uint32_t>(result.prediction.report.repaired_values);
  v.model_version = result.model_version;
  // v2 phase breakdown for the router's cross-process trace: everything
  // spent waiting inside this worker folds into worker_queue.
  v.worker_queue_s = result.phases.admission_s + result.phases.queue_s +
                     result.phases.batch_wait_s;
  v.worker_transform_s = result.phases.transform_s;
  v.worker_predict_s = result.phases.predict_s;
  return v;
}

}  // namespace scwc::cluster
