// ClusterWorker — one shard of the sharded serving fleet.
//
// Wraps a ClassificationService behind the SCWCWIRE protocol: a listener
// thread accepts router connections; each connection gets a reader thread
// (decodes frames, submits windows, handles swaps/pings/stats) and a
// responder thread (drains the FIFO of pending futures and writes verdict
// frames back). The split keeps the read path non-blocking: slow inference
// never stalls frame intake, and verdicts always leave in submission order
// per connection, so the router can rely on FIFO completion per shard.
//
// Model-bundle distribution (DESIGN.md §13): the router streams a bundle as
// SwapBegin/SwapChunk*/SwapCommit. The worker assembles the bytes, verifies
// the announced CRC, and hot-swaps through serve::try_swap_from_stream —
// which on ANY load failure leaves the registry untouched, so a corrupt
// push can never take down serving. SwapAbort rolls the registry back one
// activation (the router sends it when a sibling shard rejected the same
// push, restoring fleet-wide version agreement).
//
// The same class backs the scwc_worker binary and the in-process cluster
// tests — everything is loopback TCP either way.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "net/socket.hpp"
#include "obs/metrics.hpp"
#include "serve/service.hpp"

namespace scwc::cluster {

struct WorkerConfig {
  std::uint32_t shard_id = 0;
  std::uint16_t port = 0;  ///< 0 → ephemeral; read back via port()
  /// Per-future wait bound in the responder; a future that is not ready
  /// within this is answered as an internal shed (never blocks forever).
  double verdict_wait_s = 30.0;
  serve::ServiceConfig service;
};

/// Monotonic serving counters, readable while the worker runs.
struct WorkerCounters {
  std::uint64_t submitted = 0;  ///< windows received on the wire
  std::uint64_t answered = 0;   ///< accepted verdicts (incl. abstains)
  std::uint64_t abstained = 0;
  std::uint64_t shed = 0;       ///< rejected verdicts
  std::uint64_t swaps = 0;      ///< successful bundle hot-swaps
};

class ClusterWorker {
 public:
  /// `registry` must outlive the worker. The service is constructed here
  /// so the worker owns the full request path of its shard.
  ClusterWorker(serve::ModelRegistry& registry, WorkerConfig config);
  ~ClusterWorker();

  ClusterWorker(const ClusterWorker&) = delete;
  ClusterWorker& operator=(const ClusterWorker&) = delete;

  /// Binds the listener and starts accepting. Throws scwc::Error when the
  /// port cannot be bound.
  void start();

  /// Stops accepting, closes every connection, drains pending verdicts and
  /// stops the service. Idempotent; the destructor calls it.
  void stop();

  /// Blocks until a kShutdown frame arrives (or stop() is called). The
  /// scwc_worker main parks here.
  void wait_shutdown();

  [[nodiscard]] std::uint16_t port() const noexcept {
    return listener_.port();
  }
  [[nodiscard]] WorkerCounters counters() const noexcept;
  [[nodiscard]] serve::ClassificationService& service() noexcept {
    return *service_;
  }

 private:
  /// One verdict the responder still owes the peer, FIFO per connection.
  struct PendingVerdict {
    std::uint64_t request_id = 0;
    std::int64_t job_id = 0;
    /// Protocol version of the submit frame; the verdict answers at the
    /// same version, so a v1 router never sees v2 payload fields.
    std::uint16_t wire_version = net::kWireVersion;
    std::chrono::steady_clock::time_point submitted_at;
    std::future<serve::ServeResult> result;
  };

  /// Per-connection state. The reader thread owns decode + swap assembly;
  /// the responder thread owns the pending queue's consumer side; both
  /// write frames under write_mutex.
  struct Connection {
    explicit Connection(net::Socket s) : sock(std::move(s)) {}

    // Written by the reader (submit/swap paths) and shut down cross-thread
    // by stop(); the socket's own fd lifecycle is the synchronization
    // (shutdown_now unblocks, close happens after joins).
    net::Socket sock;  // scwc-lint: allow(guarded-field-coverage)
    Mutex write_mutex{"cluster.worker.write"};
    Mutex queue_mutex{"cluster.worker.queue"};
    CondVar queue_cv;
    std::deque<PendingVerdict> queue SCWC_GUARDED_BY(queue_mutex);
    bool closing SCWC_GUARDED_BY(queue_mutex) = false;
    // Swap assembly state — touched only by this connection's reader.
    std::string swap_version;  // scwc-lint: allow(guarded-field-coverage)
    std::uint64_t swap_total = 0;  // scwc-lint: allow(guarded-field-coverage)
    std::string swap_buffer;  // scwc-lint: allow(guarded-field-coverage)
    bool swap_active = false;  // scwc-lint: allow(guarded-field-coverage)
    std::uint64_t stream_seq = 0;  // scwc-lint: allow(guarded-field-coverage)
    // Joined by stop() after the sockets are shut down; set once at spawn.
    std::thread reader;  // scwc-lint: allow(guarded-field-coverage)
    std::thread responder;  // scwc-lint: allow(guarded-field-coverage)
  };

  void accept_loop();
  void reader_loop(Connection& conn);
  void responder_loop(Connection& conn);
  /// Serializes + writes one frame under the connection's write mutex.
  bool send(Connection& conn, net::FrameType type, std::string_view payload,
            std::uint16_t version = net::kWireVersion);
  void enqueue(Connection& conn, PendingVerdict pending);
  void handle_submit(Connection& conn, const net::Frame& frame);
  void handle_telemetry(Connection& conn, std::string_view payload);
  void handle_ping(Connection& conn, const net::Frame& frame);
  void handle_swap_begin(Connection& conn, std::string_view payload);
  void handle_swap_chunk(Connection& conn, std::string_view payload);
  void handle_swap_commit(Connection& conn, std::string_view payload);
  void handle_swap_abort(Connection& conn, std::string_view payload);
  void send_stats(Connection& conn);
  void send_metrics(Connection& conn);
  [[nodiscard]] net::VerdictFrame make_verdict(
      const PendingVerdict& pending, const serve::ServeResult& result) const;

  serve::ModelRegistry& registry_;
  const WorkerConfig config_;
  // Internally synchronized / thread-confined members of the worker shell;
  // the service and listener own their own locking.
  std::unique_ptr<serve::ClassificationService> service_;  // scwc-lint: allow(guarded-field-coverage)
  net::TcpListener listener_;  // scwc-lint: allow(guarded-field-coverage)
  std::thread accept_thread_;  // scwc-lint: allow(guarded-field-coverage)

  Mutex mutex_{"cluster.worker"};
  std::vector<std::unique_ptr<Connection>> connections_
      SCWC_GUARDED_BY(mutex_);
  bool started_ SCWC_GUARDED_BY(mutex_) = false;
  bool stopped_ SCWC_GUARDED_BY(mutex_) = false;
  bool shutdown_requested_ SCWC_GUARDED_BY(mutex_) = false;
  CondVar shutdown_cv_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> abstained_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> swaps_{0};

  /// Submits that arrived without a trace context (v1 router) — the typed
  /// "degraded to untraced operation" signal the compat tests assert on.
  obs::CounterHandle obs_untraced_submits_;
};

}  // namespace scwc::cluster
