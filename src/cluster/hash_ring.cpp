#include "cluster/hash_ring.hpp"

#include "common/error.hpp"

namespace scwc::cluster {

namespace {

/// Ring point of one (shard, vnode) pair. The two halves are mixed
/// separately so consecutive shard ids / vnode indices land far apart.
std::uint64_t ring_point(std::uint32_t shard_id, std::size_t vnode) noexcept {
  return mix64(mix64(static_cast<std::uint64_t>(shard_id) << 32) ^
               mix64(static_cast<std::uint64_t>(vnode) + 1));
}

}  // namespace

HashRing::HashRing(std::size_t vnodes) : vnodes_(vnodes) {
  SCWC_REQUIRE(vnodes_ > 0, "HashRing: vnodes must be positive");
}

void HashRing::add_shard(std::uint32_t shard_id) {
  if (!shards_.insert(shard_id).second) return;
  for (std::size_t v = 0; v < vnodes_; ++v) {
    // Collisions between shards are possible in principle; first writer
    // keeps the point, which only nudges the balance by one vnode.
    ring_.emplace(ring_point(shard_id, v), shard_id);
  }
}

void HashRing::remove_shard(std::uint32_t shard_id) {
  if (shards_.erase(shard_id) == 0) return;
  for (auto it = ring_.begin(); it != ring_.end();) {
    if (it->second == shard_id) {
      it = ring_.erase(it);
    } else {
      ++it;
    }
  }
}

bool HashRing::contains(std::uint32_t shard_id) const {
  return shards_.count(shard_id) > 0;
}

std::optional<std::uint32_t> HashRing::owner(std::int64_t job_id) const {
  if (ring_.empty()) return std::nullopt;
  const std::uint64_t h = mix64(static_cast<std::uint64_t>(job_id));
  auto it = ring_.lower_bound(h);
  if (it == ring_.end()) it = ring_.begin();  // wrap
  return it->second;
}

std::vector<std::uint32_t> HashRing::shards() const {
  return {shards_.begin(), shards_.end()};
}

}  // namespace scwc::cluster
