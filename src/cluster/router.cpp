#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/wire.hpp"
#include "obs/request_trace.hpp"

namespace scwc::cluster {

namespace {

/// Chunk size for bundle streaming: large enough to amortise framing,
/// comfortably under the wire cap.
constexpr std::size_t kPushChunkBytes = 1ULL << 18;  // 256 KiB

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

}  // namespace

ShardRouter::ShardRouter(RouterConfig config)
    : config_(config), ring_(config.vnodes) {
  auto& reg = obs::MetricsRegistry::global();
  obs_submitted_ = reg.counter("scwc_cluster_submitted_total");
  obs_verdicts_ = reg.counter("scwc_cluster_verdicts_total");
  obs_shed_queue_full_ = reg.counter("scwc_cluster_shed_queue_full_total");
  obs_shed_shard_down_ = reg.counter("scwc_cluster_shed_shard_down_total");
  obs_shed_shutdown_ = reg.counter("scwc_cluster_shed_shutdown_total");
  obs_shard_deaths_ = reg.counter("scwc_cluster_shard_deaths_total");
  obs_swap_pushes_ = reg.counter("scwc_cluster_swap_pushes_total");
  obs_swap_rollbacks_ = reg.counter("scwc_cluster_swap_rollbacks_total");
}

ShardRouter::~ShardRouter() { stop(); }

std::uint32_t ShardRouter::add_shard(std::uint16_t port) {
  net::Socket sock = net::connect_loopback(port, config_.connect_deadline_s);
  SCWC_REQUIRE(sock.valid(), "router: cannot connect to worker on port " +
                                 std::to_string(port));
  // Bound the handshake, then hand the reader a fully blocking socket —
  // a reader-side receive timeout would be indistinguishable from EOF.
  sock.set_io_timeout(config_.hello_timeout_s);
  std::optional<net::Frame> frame = net::read_frame(sock);
  SCWC_REQUIRE(frame.has_value() && frame->type == net::FrameType::kHello,
               "router: worker on port " + std::to_string(port) +
                   " did not complete the hello handshake");
  sock.set_io_timeout(0);
  const net::HelloFrame hello = net::decode_hello(frame->payload);

  auto conn = std::make_shared<ShardConn>(hello.shard_id, port,
                                          std::move(sock));
  conn->hello = hello;
  {
    LockGuard lock(ring_mutex_);
    SCWC_REQUIRE(!stopped_, "router: already stopped");
    SCWC_REQUIRE(conns_.find(hello.shard_id) == conns_.end(),
                 "router: shard " + std::to_string(hello.shard_id) +
                     " is already connected");
    ring_.add_shard(hello.shard_id);
    conns_.emplace(hello.shard_id, conn);
  }
  conn->reader = std::thread([this, conn] { reader_loop(conn); });
  SCWC_LOG_INFO("cluster router: shard "
                << hello.shard_id << " joined from port " << port
                << " (model '" << hello.model_version << "', "
                << hello.window_steps << "×" << hello.sensors << ")");
  return hello.shard_id;
}

std::future<serve::ServeResult> ShardRouter::submit(std::int64_t job_id,
                                                    std::vector<double> window,
                                                    std::size_t steps,
                                                    std::size_t sensors) {
  submitted_.fetch_add(1);
  obs_submitted_.inc();

  std::shared_ptr<ShardConn> conn;
  bool stopped = false;
  {
    LockGuard lock(ring_mutex_);
    stopped = stopped_;
    if (!stopped) {
      if (const auto owner_id = ring_.owner(job_id)) {
        const auto it = conns_.find(*owner_id);
        if (it != conns_.end()) conn = it->second;
      }
    }
  }
  if (stopped) return shed(serve::RejectReason::kShutdown);
  if (conn == nullptr || !conn->up.load()) {
    return shed(serve::RejectReason::kShardDown);
  }

  // Bounded in-flight per shard: router-level admission control.
  if (conn->inflight.fetch_add(1) >= config_.max_inflight_per_shard) {
    conn->inflight.fetch_sub(1);
    return shed(serve::RejectReason::kQueueFull);
  }

  const std::uint64_t request_id = next_request_id_.fetch_add(1);
  std::future<serve::ServeResult> future;
  {
    LockGuard lock(conn->pending_mutex);
    PendingRequest& req = conn->pending[request_id];
    req.submitted_at = std::chrono::steady_clock::now();
    future = req.promise.get_future();
  }

  net::SubmitWindowFrame frame;
  frame.request_id = request_id;
  frame.job_id = job_id;
  frame.deadline_ns =
      config_.default_deadline_s > 0.0
          ? static_cast<std::uint64_t>(config_.default_deadline_s * 1e9)
          : 0;
  frame.steps = static_cast<std::uint32_t>(steps);
  frame.sensors = static_cast<std::uint32_t>(sensors);
  frame.values = std::move(window);

  if (!send(*conn, net::FrameType::kSubmitWindow,
            net::encode_submit_window(frame))) {
    {
      LockGuard lock(conn->pending_mutex);
      conn->pending.erase(request_id);
    }
    conn->inflight.fetch_sub(1);
    mark_down(*conn, serve::RejectReason::kShardDown);
    return shed(serve::RejectReason::kShardDown);
  }
  return future;
}

serve::ServeResult ShardRouter::submit_and_wait(
    std::int64_t job_id, const std::vector<double>& window, std::size_t steps,
    std::size_t sensors, const serve::RetryPolicy& policy, Rng& rng) {
  return serve::retry_with_backoff(
      policy, rng,
      [&](double wait_s) -> std::optional<serve::ServeResult> {
        std::future<serve::ServeResult> future =
            submit(job_id, window, steps, sensors);
        return serve::get_within(future, wait_s);
      });
}

SwapReport ShardRouter::push_bundle(const std::string& bundle_bytes,
                                    const std::string& version) {
  obs_swap_pushes_.inc();
  std::vector<std::shared_ptr<ShardConn>> targets;
  {
    LockGuard lock(ring_mutex_);
    for (const auto& [id, conn] : conns_) {
      if (conn->up.load()) targets.push_back(conn);
    }
  }
  SwapReport report;
  report.ok = !targets.empty();
  for (const auto& conn : targets) {
    SwapOutcome outcome = push_to_shard(*conn, bundle_bytes, version);
    report.ok = report.ok && outcome.ok;
    report.shards.push_back(std::move(outcome));
  }
  if (!report.ok && !report.shards.empty()) {
    // Two-phase outcome: some shard refused (corrupt bytes, loader nack,
    // death mid-push). Roll every shard that DID commit back one
    // activation so the fleet stays version-consistent.
    for (std::size_t i = 0; i < report.shards.size(); ++i) {
      if (!report.shards[i].ok) continue;
      abort_on_shard(*targets[i], report.shards[i],
                     "sibling shard rejected bundle '" + version + "'");
    }
    obs_swap_rollbacks_.inc();
    SCWC_LOG_WARN("cluster router: bundle '"
                  << version << "' rejected; rolled back "
                  << std::count_if(report.shards.begin(), report.shards.end(),
                                   [](const SwapOutcome& o) {
                                     return o.rolled_back;
                                   })
                  << " shard(s)");
  }
  return report;
}

std::optional<net::StatsReplyFrame> ShardRouter::fetch_stats(
    std::uint32_t shard_id, double timeout_s) {
  std::shared_ptr<ShardConn> conn;
  {
    LockGuard lock(ring_mutex_);
    const auto it = conns_.find(shard_id);
    if (it != conns_.end()) conn = it->second;
  }
  if (conn == nullptr || !conn->up.load()) return std::nullopt;
  {
    LockGuard lock(conn->control_mutex);
    conn->stats_reply.reset();
  }
  if (!send(*conn, net::FrameType::kStats, "")) return std::nullopt;
  const auto deadline = deadline_after(timeout_s);
  LockGuard lock(conn->control_mutex);
  while (!conn->stats_reply.has_value()) {
    if (conn->control_cv.wait_until(conn->control_mutex, deadline) ==
            std::cv_status::timeout &&
        !conn->stats_reply.has_value()) {
      return std::nullopt;
    }
  }
  std::optional<net::StatsReplyFrame> reply = std::move(conn->stats_reply);
  conn->stats_reply.reset();
  return reply;
}

std::optional<std::uint32_t> ShardRouter::owner(std::int64_t job_id) const {
  LockGuard lock(ring_mutex_);
  return ring_.owner(job_id);
}

std::size_t ShardRouter::live_shards() const {
  LockGuard lock(ring_mutex_);
  return ring_.shard_count();
}

std::vector<ShardStatus> ShardRouter::shards() const {
  std::vector<ShardStatus> out;
  LockGuard lock(ring_mutex_);
  out.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ShardStatus status;
    status.shard_id = id;
    status.port = conn->port;
    status.up = conn->up.load();
    status.inflight = conn->inflight.load();
    status.window_steps = conn->hello.window_steps;
    status.sensors = conn->hello.sensors;
    status.model_version = conn->hello.model_version;
    out.push_back(std::move(status));
  }
  return out;
}

void ShardRouter::shutdown_workers() {
  std::vector<std::shared_ptr<ShardConn>> targets;
  {
    LockGuard lock(ring_mutex_);
    for (const auto& [id, conn] : conns_) {
      if (conn->up.load()) targets.push_back(conn);
    }
  }
  for (const auto& conn : targets) {
    (void)send(*conn, net::FrameType::kShutdown, "");
  }
}

void ShardRouter::stop() {
  std::map<std::uint32_t, std::shared_ptr<ShardConn>> conns;
  {
    LockGuard lock(ring_mutex_);
    if (stopped_) return;
    stopped_ = true;
    conns = conns_;
  }
  for (const auto& [id, conn] : conns) {
    mark_down(*conn, serve::RejectReason::kShutdown);
  }
  for (const auto& [id, conn] : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    conn->sock.close();
  }
}

void ShardRouter::reader_loop(const std::shared_ptr<ShardConn>& conn) {
  try {
    while (std::optional<net::Frame> frame = net::read_frame(conn->sock)) {
      switch (frame->type) {
        case net::FrameType::kVerdict: {
          const net::VerdictFrame v = net::decode_verdict(frame->payload);
          PendingRequest req;
          bool found = false;
          {
            LockGuard lock(conn->pending_mutex);
            const auto it = conn->pending.find(v.request_id);
            if (it != conn->pending.end()) {
              req = std::move(it->second);
              conn->pending.erase(it);
              found = true;
            }
          }
          if (!found) {
            // Stream-driven verdicts (high id bit) and verdicts for
            // requests we already failed land here.
            orphan_verdicts_.fetch_add(1);
            break;
          }
          conn->inflight.fetch_sub(1);
          verdicts_.fetch_add(1);
          obs_verdicts_.inc();

          serve::ServeResult result;
          result.accepted = v.accepted;
          result.reject_reason =
              static_cast<serve::RejectReason>(v.reject_reason);
          result.prediction.label = v.label;
          result.prediction.abstained = v.abstained;
          result.prediction.reason =
              static_cast<robust::AbstainReason>(v.abstain_reason);
          result.prediction.report.steps = conn->hello.window_steps;
          result.prediction.report.sensors = conn->hello.sensors;
          result.prediction.report.missing_values = v.missing_values;
          result.prediction.report.repaired_values = v.repaired_values;
          result.model_version = v.model_version;
          result.batch_size = v.batch_size;
          result.degrade_level = v.degrade_level;
          result.trace_id = v.trace_id;
          result.total_latency_s = obs::seconds_between(
              req.submitted_at, std::chrono::steady_clock::now());
          // Repurposed at the router tier: time NOT spent inside the
          // worker, i.e. wire + router overhead.
          result.queue_delay_s =
              std::max(0.0, result.total_latency_s - v.worker_latency_s);
          req.promise.set_value(std::move(result));
          break;
        }
        case net::FrameType::kSwapAck: {
          {
            LockGuard lock(conn->control_mutex);
            conn->swap_ack = net::decode_swap_ack(frame->payload);
          }
          conn->control_cv.notify_all();
          break;
        }
        case net::FrameType::kStatsReply: {
          {
            LockGuard lock(conn->control_mutex);
            conn->stats_reply = net::decode_stats_reply(frame->payload);
          }
          conn->control_cv.notify_all();
          break;
        }
        case net::FrameType::kError: {
          const net::ErrorFrame err = net::decode_error(frame->payload);
          SCWC_LOG_WARN("cluster router: shard "
                        << conn->shard_id << " reported: " << err.message);
          break;
        }
        default:
          break;  // kPong and anything else valid-but-unexpected
      }
    }
  } catch (const scwc::Error& e) {
    SCWC_LOG_WARN("cluster router: protocol error from shard "
                  << conn->shard_id << ": " << e.what());
  }
  mark_down(*conn, serve::RejectReason::kShardDown);
}

void ShardRouter::mark_down(ShardConn& conn, serve::RejectReason reason) {
  const bool first = conn.up.exchange(false);
  if (first) {
    {
      LockGuard lock(ring_mutex_);
      ring_.remove_shard(conn.shard_id);
    }
    if (reason == serve::RejectReason::kShardDown) {
      obs_shard_deaths_.inc();
      SCWC_LOG_WARN("cluster router: shard "
                    << conn.shard_id
                    << " down — ring rehashed onto survivors");
    }
  }
  conn.sock.shutdown_now();
  // Fail everything in flight with the typed reason; late registrations
  // from racing submitters fail at their send() and clean up themselves.
  std::unordered_map<std::uint64_t, PendingRequest> orphaned;
  {
    LockGuard lock(conn.pending_mutex);
    orphaned.swap(conn.pending);
  }
  for (auto& [id, req] : orphaned) {
    conn.inflight.fetch_sub(1);
    serve::ServeResult result;
    result.accepted = false;
    result.reject_reason = reason;
    if (reason == serve::RejectReason::kShardDown) {
      obs_shed_shard_down_.inc();
    } else {
      obs_shed_shutdown_.inc();
    }
    req.promise.set_value(std::move(result));
  }
  {
    LockGuard lock(conn.control_mutex);
    if (!conn.swap_ack.has_value()) {
      net::SwapAckFrame ack;
      ack.ok = false;
      ack.message = "shard down";
      conn.swap_ack = ack;
    }
  }
  conn.control_cv.notify_all();
}

std::future<serve::ServeResult> ShardRouter::shed(
    serve::RejectReason reason) {
  switch (reason) {
    case serve::RejectReason::kQueueFull:
      obs_shed_queue_full_.inc();
      break;
    case serve::RejectReason::kShardDown:
      obs_shed_shard_down_.inc();
      break;
    case serve::RejectReason::kShutdown:
      obs_shed_shutdown_.inc();
      break;
    default:
      break;
  }
  std::promise<serve::ServeResult> promise;
  serve::ServeResult result;
  result.accepted = false;
  result.reject_reason = reason;
  promise.set_value(std::move(result));
  return promise.get_future();
}

SwapOutcome ShardRouter::push_to_shard(ShardConn& conn,
                                       const std::string& bundle_bytes,
                                       const std::string& version) {
  SwapOutcome outcome;
  outcome.shard_id = conn.shard_id;
  {
    LockGuard lock(conn.control_mutex);
    conn.swap_ack.reset();
  }
  net::SwapBeginFrame begin;
  begin.version = version;
  begin.total_bytes = bundle_bytes.size();
  if (!send(conn, net::FrameType::kSwapBegin,
            net::encode_swap_begin(begin))) {
    outcome.message = "send failed (shard gone?)";
    return outcome;
  }
  for (std::size_t offset = 0; offset < bundle_bytes.size();
       offset += kPushChunkBytes) {
    net::SwapChunkFrame chunk;
    chunk.offset = offset;
    chunk.bytes = bundle_bytes.substr(
        offset, std::min(kPushChunkBytes, bundle_bytes.size() - offset));
    if (!send(conn, net::FrameType::kSwapChunk,
              net::encode_swap_chunk(chunk))) {
      outcome.message = "send failed mid-stream";
      return outcome;
    }
  }
  net::SwapCommitFrame commit;
  commit.crc32 = net::crc32(bundle_bytes);
  if (!send(conn, net::FrameType::kSwapCommit,
            net::encode_swap_commit(commit))) {
    outcome.message = "commit send failed";
    return outcome;
  }
  const std::optional<net::SwapAckFrame> ack =
      wait_swap_ack(conn, config_.swap_ack_timeout_s);
  if (!ack.has_value()) {
    outcome.message = "swap ack timeout";
    return outcome;
  }
  outcome.ok = ack->ok;
  outcome.active_version = ack->active_version;
  outcome.message = ack->message;
  return outcome;
}

void ShardRouter::abort_on_shard(ShardConn& conn, SwapOutcome& outcome,
                                 const std::string& reason) {
  {
    LockGuard lock(conn.control_mutex);
    conn.swap_ack.reset();
  }
  net::SwapAbortFrame abort_frame;
  abort_frame.reason = reason;
  if (!send(conn, net::FrameType::kSwapAbort,
            net::encode_swap_abort(abort_frame))) {
    outcome.message = "rollback send failed";
    outcome.ok = false;
    return;
  }
  const std::optional<net::SwapAckFrame> ack =
      wait_swap_ack(conn, config_.swap_ack_timeout_s);
  outcome.rolled_back = ack.has_value() && ack->ok;
  outcome.ok = false;  // the push as a whole did not take on this shard
  if (ack.has_value()) outcome.active_version = ack->active_version;
}

std::optional<net::SwapAckFrame> ShardRouter::wait_swap_ack(
    ShardConn& conn, double timeout_s) {
  const auto deadline = deadline_after(timeout_s);
  LockGuard lock(conn.control_mutex);
  while (!conn.swap_ack.has_value()) {
    if (conn.control_cv.wait_until(conn.control_mutex, deadline) ==
            std::cv_status::timeout &&
        !conn.swap_ack.has_value()) {
      return std::nullopt;
    }
  }
  std::optional<net::SwapAckFrame> ack = std::move(conn.swap_ack);
  conn.swap_ack.reset();
  return ack;
}

bool ShardRouter::send(ShardConn& conn, net::FrameType type,
                       std::string_view payload) {
  LockGuard lock(conn.write_mutex);
  return net::write_frame(conn.sock, type, payload);
}

}  // namespace scwc::cluster
