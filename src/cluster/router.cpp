#include "cluster/router.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "common/error.hpp"
#include "common/log.hpp"
#include "net/wire.hpp"
#include "obs/export.hpp"
#include "obs/request_trace.hpp"
#include "serve/audit.hpp"

namespace scwc::cluster {

namespace {

/// Chunk size for bundle streaming: large enough to amortise framing,
/// comfortably under the wire cap.
constexpr std::size_t kPushChunkBytes = 1ULL << 18;  // 256 KiB

std::chrono::steady_clock::time_point deadline_after(double seconds) {
  return std::chrono::steady_clock::now() +
         std::chrono::duration_cast<std::chrono::steady_clock::duration>(
             std::chrono::duration<double>(seconds));
}

/// Prometheus sample-value formatting for re-exported worker series.
/// Json::write_number turns non-finite into "null", which Prometheus
/// rejects — spell those the exposition-format way instead.
std::string prom_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream os;
  obs::Json(v).write(os);
  return os.str();
}

}  // namespace

ShardRouter::ShardRouter(RouterConfig config)
    : config_(config), ring_(config.vnodes), tracer_(config.trace) {
  auto& reg = obs::MetricsRegistry::global();
  obs_submitted_ = reg.counter("scwc_cluster_submitted_total");
  obs_verdicts_ = reg.counter("scwc_cluster_verdicts_total");
  obs_shed_queue_full_ = reg.counter("scwc_cluster_shed_queue_full_total");
  obs_shed_shard_down_ = reg.counter("scwc_cluster_shed_shard_down_total");
  obs_shed_shutdown_ = reg.counter("scwc_cluster_shed_shutdown_total");
  obs_shard_deaths_ = reg.counter("scwc_cluster_shard_deaths_total");
  obs_swap_pushes_ = reg.counter("scwc_cluster_swap_pushes_total");
  obs_swap_rollbacks_ = reg.counter("scwc_cluster_swap_rollbacks_total");
  obs_wire_tx_frames_ = reg.counter("scwc_cluster_wire_tx_frames_total");
  obs_wire_tx_bytes_ = reg.counter("scwc_cluster_wire_tx_bytes_total");
  obs_wire_rx_frames_ = reg.counter("scwc_cluster_wire_rx_frames_total");
  obs_wire_rx_bytes_ = reg.counter("scwc_cluster_wire_rx_bytes_total");
  obs_untraced_submits_ = reg.counter("scwc_cluster_untraced_submits_total");
  obs_unphased_verdicts_ =
      reg.counter("scwc_cluster_unphased_verdicts_total");
  obs_ring_size_ = reg.gauge("scwc_cluster_ring_size");
  obs_swap_phase_ = reg.gauge("scwc_cluster_swap_phase");
}

ShardRouter::~ShardRouter() { stop(); }

std::uint32_t ShardRouter::add_shard(std::uint16_t port) {
  net::Socket sock = net::connect_loopback(port, config_.connect_deadline_s);
  SCWC_REQUIRE(sock.valid(), "router: cannot connect to worker on port " +
                                 std::to_string(port));
  // Bound the handshake, then hand the reader a fully blocking socket —
  // a reader-side receive timeout would be indistinguishable from EOF.
  sock.set_io_timeout(config_.hello_timeout_s);
  std::optional<net::Frame> frame = net::read_frame(sock);
  SCWC_REQUIRE(frame.has_value() && frame->type == net::FrameType::kHello,
               "router: worker on port " + std::to_string(port) +
                   " did not complete the hello handshake");
  const net::HelloFrame hello = net::decode_hello(frame->payload);

  auto conn = std::make_shared<ShardConn>(hello.shard_id, port,
                                          std::move(sock));
  conn->hello = hello;
  // Version negotiation: the hello frame's header announces the highest
  // protocol the worker speaks; everything after this flows at the lower
  // of the two. A v1 peer therefore degrades to untraced operation (the
  // typed counters record it) — never to a decode error.
  conn->wire_version =
      std::min<std::uint16_t>(frame->version, net::kWireVersion);
  if (conn->wire_version >= 2 && config_.clock_sync_pings > 0) {
    // Clock handshake while the socket is still exclusively ours and the
    // hello io timeout still bounds each round trip.
    sync_clock(*conn);
  }
  conn->sock.set_io_timeout(0);
  conn->rolling_latency = obs::MetricsRegistry::global().rolling_histogram(
      "scwc_cluster_shard" + std::to_string(hello.shard_id) +
      "_request_seconds");
  {
    LockGuard lock(ring_mutex_);
    SCWC_REQUIRE(!stopped_, "router: already stopped");
    SCWC_REQUIRE(conns_.find(hello.shard_id) == conns_.end(),
                 "router: shard " + std::to_string(hello.shard_id) +
                     " is already connected");
    ring_.add_shard(hello.shard_id);
    conns_.emplace(hello.shard_id, conn);
    obs_ring_size_.set(static_cast<double>(ring_.shard_count()));
  }
  conn->reader = std::thread([this, conn] { reader_loop(conn); });
  SCWC_LOG_INFO("cluster router: shard "
                << hello.shard_id << " joined from port " << port
                << " (model '" << hello.model_version << "', "
                << hello.window_steps << "×" << hello.sensors << ", wire v"
                << conn->wire_version << ", clock offset "
                << conn->clock_offset_ns << "ns)");
  return hello.shard_id;
}

void ShardRouter::sync_clock(ShardConn& conn) {
  // NTP-style minimum-RTT filter: of N ping/pong rounds, trust the one
  // with the smallest round trip — queueing delay only ever inflates the
  // estimate. offset = worker_clock − midpoint(send, recv), so adding the
  // offset to a router stamp lands it on the worker's steady clock.
  bool have = false;
  for (std::size_t round = 0; round < config_.clock_sync_pings; ++round) {
    net::PingFrame ping;
    ping.nonce = round + 1;
    const std::uint64_t t0 = obs::steady_ns();
    if (!net::write_frame(conn.sock, net::FrameType::kPing,
                          net::encode_ping(ping), conn.wire_version)) {
      break;
    }
    std::optional<net::Frame> reply = net::read_frame(conn.sock);
    const std::uint64_t t1 = obs::steady_ns();
    if (!reply.has_value() || reply->type != net::FrameType::kPong) break;
    const net::PongFrame pong =
        net::decode_pong(reply->payload, reply->version);
    if (pong.nonce != ping.nonce || pong.t_mono_ns == 0) break;
    const std::uint64_t rtt = t1 > t0 ? t1 - t0 : 0;
    if (!have || rtt < conn.clock_rtt_ns) {
      const std::uint64_t mid = t0 + (t1 - t0) / 2;
      conn.clock_offset_ns = static_cast<std::int64_t>(pong.t_mono_ns) -
                             static_cast<std::int64_t>(mid);
      conn.clock_rtt_ns = rtt;
      have = true;
    }
  }
}

std::future<serve::ServeResult> ShardRouter::submit(std::int64_t job_id,
                                                    std::vector<double> window,
                                                    std::size_t steps,
                                                    std::size_t sensors) {
  submitted_.fetch_add(1);
  obs_submitted_.inc();
  const auto t_entry = std::chrono::steady_clock::now();
  // Stamp the trace identity before routing so even sheds carry an id;
  // the same id travels in the submit frame and comes back in the audit
  // log, which is what lets scwc_tracemerge join the two processes.
  const std::uint64_t trace_id = tracer_.begin_trace();
  const bool sampled = tracer_.sampled(trace_id);

  std::shared_ptr<ShardConn> conn;
  bool stopped = false;
  {
    LockGuard lock(ring_mutex_);
    stopped = stopped_;
    if (!stopped) {
      if (const auto owner_id = ring_.owner(job_id)) {
        const auto it = conns_.find(*owner_id);
        if (it != conns_.end()) conn = it->second;
      }
    }
  }
  const auto t_routed = std::chrono::steady_clock::now();
  obs::RequestPhases phases;
  phases.route_s = obs::seconds_between(t_entry, t_routed);
  phases.total_s = phases.route_s;
  if (stopped) {
    return shed(serve::RejectReason::kShutdown, trace_id, sampled, job_id,
                std::nullopt, t_entry, phases);
  }
  if (conn == nullptr || !conn->up.load()) {
    return shed(serve::RejectReason::kShardDown, trace_id, sampled, job_id,
                conn != nullptr
                    ? std::optional<std::uint32_t>(conn->shard_id)
                    : std::nullopt,
                t_entry, phases);
  }

  // Bounded in-flight per shard: router-level admission control.
  if (conn->inflight.fetch_add(1) >= config_.max_inflight_per_shard) {
    conn->inflight.fetch_sub(1);
    const auto now = std::chrono::steady_clock::now();
    phases.admission_s = obs::seconds_between(t_routed, now);
    phases.total_s = obs::seconds_between(t_entry, now);
    return shed(serve::RejectReason::kQueueFull, trace_id, sampled, job_id,
                conn->shard_id, t_entry, phases);
  }

  const std::uint64_t request_id = next_request_id_.fetch_add(1);
  std::future<serve::ServeResult> future;
  {
    LockGuard lock(conn->pending_mutex);
    PendingRequest& req = conn->pending[request_id];
    req.submitted_at = t_entry;
    req.trace_id = trace_id;
    req.trace_sampled = sampled;
    req.job_id = job_id;
    req.route_s = phases.route_s;
    req.admission_s =
        obs::seconds_between(t_routed, std::chrono::steady_clock::now());
    future = req.promise.get_future();
  }

  net::SubmitWindowFrame frame;
  frame.request_id = request_id;
  frame.job_id = job_id;
  frame.deadline_ns =
      config_.default_deadline_s > 0.0
          ? static_cast<std::uint64_t>(config_.default_deadline_s * 1e9)
          : 0;
  frame.steps = static_cast<std::uint32_t>(steps);
  frame.sensors = static_cast<std::uint32_t>(sensors);
  frame.values = std::move(window);
  if (conn->wire_version >= 2) {
    frame.trace_id = trace_id;
    frame.trace_sampled = sampled;
  } else {
    // v1 shard: the submit crosses the wire without its trace context.
    obs_untraced_submits_.inc();
  }

  const auto t_send = std::chrono::steady_clock::now();
  if (!send(*conn, net::FrameType::kSubmitWindow,
            net::encode_submit_window(frame, conn->wire_version))) {
    {
      LockGuard lock(conn->pending_mutex);
      conn->pending.erase(request_id);
    }
    conn->inflight.fetch_sub(1);
    mark_down(*conn, serve::RejectReason::kShardDown);
    const auto now = std::chrono::steady_clock::now();
    phases.admission_s = obs::seconds_between(t_routed, t_send);
    phases.wire_send_s = obs::seconds_between(t_send, now);
    phases.total_s = obs::seconds_between(t_entry, now);
    return shed(serve::RejectReason::kShardDown, trace_id, sampled, job_id,
                conn->shard_id, t_entry, phases);
  }
  // Patch the measured send time into the pending entry. If the verdict
  // already raced past us the entry is gone and the send time simply folds
  // into the wire_recv residual — benign either way.
  const double wire_send_s =
      obs::seconds_between(t_send, std::chrono::steady_clock::now());
  {
    LockGuard lock(conn->pending_mutex);
    const auto it = conn->pending.find(request_id);
    if (it != conn->pending.end()) it->second.wire_send_s = wire_send_s;
  }
  return future;
}

serve::ServeResult ShardRouter::submit_and_wait(
    std::int64_t job_id, const std::vector<double>& window, std::size_t steps,
    std::size_t sensors, const serve::RetryPolicy& policy, Rng& rng) {
  return serve::retry_with_backoff(
      policy, rng,
      [&](double wait_s) -> std::optional<serve::ServeResult> {
        std::future<serve::ServeResult> future =
            submit(job_id, window, steps, sensors);
        return serve::get_within(future, wait_s);
      });
}

SwapReport ShardRouter::push_bundle(const std::string& bundle_bytes,
                                    const std::string& version) {
  obs_swap_pushes_.inc();
  obs_swap_phase_.set(1.0);  // 1 = pushing
  std::vector<std::shared_ptr<ShardConn>> targets;
  {
    LockGuard lock(ring_mutex_);
    for (const auto& [id, conn] : conns_) {
      if (conn->up.load()) targets.push_back(conn);
    }
  }
  SwapReport report;
  report.ok = !targets.empty();
  for (const auto& conn : targets) {
    SwapOutcome outcome = push_to_shard(*conn, bundle_bytes, version);
    report.ok = report.ok && outcome.ok;
    report.shards.push_back(std::move(outcome));
  }
  if (!report.ok && !report.shards.empty()) {
    // Two-phase outcome: some shard refused (corrupt bytes, loader nack,
    // death mid-push). Roll every shard that DID commit back one
    // activation so the fleet stays version-consistent.
    obs_swap_phase_.set(2.0);  // 2 = rolling back
    for (std::size_t i = 0; i < report.shards.size(); ++i) {
      if (!report.shards[i].ok) continue;
      abort_on_shard(*targets[i], report.shards[i],
                     "sibling shard rejected bundle '" + version + "'");
    }
    obs_swap_rollbacks_.inc();
    SCWC_LOG_WARN("cluster router: bundle '"
                  << version << "' rejected; rolled back "
                  << std::count_if(report.shards.begin(), report.shards.end(),
                                   [](const SwapOutcome& o) {
                                     return o.rolled_back;
                                   })
                  << " shard(s)");
  }
  obs_swap_phase_.set(0.0);  // 0 = idle
  return report;
}

std::optional<net::StatsReplyFrame> ShardRouter::fetch_stats(
    std::uint32_t shard_id, double timeout_s) {
  std::shared_ptr<ShardConn> conn;
  {
    LockGuard lock(ring_mutex_);
    const auto it = conns_.find(shard_id);
    if (it != conns_.end()) conn = it->second;
  }
  if (conn == nullptr || !conn->up.load()) return std::nullopt;
  {
    LockGuard lock(conn->control_mutex);
    conn->stats_reply.reset();
  }
  if (!send(*conn, net::FrameType::kStats, "")) return std::nullopt;
  const auto deadline = deadline_after(timeout_s);
  LockGuard lock(conn->control_mutex);
  while (!conn->stats_reply.has_value()) {
    if (conn->control_cv.wait_until(conn->control_mutex, deadline) ==
            std::cv_status::timeout &&
        !conn->stats_reply.has_value()) {
      return std::nullopt;
    }
  }
  std::optional<net::StatsReplyFrame> reply = std::move(conn->stats_reply);
  conn->stats_reply.reset();
  return reply;
}

std::optional<net::MetricsReplyFrame> ShardRouter::fetch_metrics(
    std::uint32_t shard_id, double timeout_s) {
  std::shared_ptr<ShardConn> conn;
  {
    LockGuard lock(ring_mutex_);
    const auto it = conns_.find(shard_id);
    if (it != conns_.end()) conn = it->second;
  }
  if (conn == nullptr || !conn->up.load()) return std::nullopt;
  // Never send a v2-only frame to a v1 peer: it would answer kError and
  // keep serving, but "degrade, don't surprise" applies to us too.
  if (conn->wire_version < 2) return std::nullopt;
  {
    LockGuard lock(conn->control_mutex);
    conn->metrics_reply.reset();
  }
  if (!send(*conn, net::FrameType::kMetricsScrape, "")) return std::nullopt;
  const auto deadline = deadline_after(timeout_s);
  LockGuard lock(conn->control_mutex);
  while (!conn->metrics_reply.has_value()) {
    if (!conn->up.load()) return std::nullopt;  // died while we waited
    if (conn->control_cv.wait_until(conn->control_mutex, deadline) ==
            std::cv_status::timeout &&
        !conn->metrics_reply.has_value()) {
      return std::nullopt;
    }
  }
  std::optional<net::MetricsReplyFrame> reply =
      std::move(conn->metrics_reply);
  conn->metrics_reply.reset();
  return reply;
}

void ShardRouter::start_metrics_poll(double period_s) {
  LockGuard lock(metrics_mutex_);
  if (poll_thread_.joinable() || poll_stop_) return;
  poll_thread_ =
      std::thread([this, period_s] { metrics_poll_loop(period_s); });
}

void ShardRouter::metrics_poll_loop(double period_s) {
  for (;;) {
    std::vector<std::uint32_t> ids;
    {
      LockGuard lock(ring_mutex_);
      if (stopped_) return;
      for (const auto& [id, conn] : conns_) {
        if (conn->up.load() && conn->wire_version >= 2) ids.push_back(id);
      }
    }
    for (const std::uint32_t id : ids) {
      std::optional<net::MetricsReplyFrame> reply =
          fetch_metrics(id, period_s);
      if (!reply.has_value()) continue;
      LockGuard lock(metrics_mutex_);
      // Kept across shard death on purpose: the last scrape of a dead
      // shard stays visible in fleet_metrics_text until restart.
      polled_metrics_[id] = std::move(*reply);
    }
    const auto deadline = deadline_after(period_s);
    LockGuard lock(metrics_mutex_);
    while (!poll_stop_) {
      if (poll_cv_.wait_until(metrics_mutex_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (poll_stop_) return;
  }
}

std::string ShardRouter::fleet_metrics_text() const {
  // The router's own registry first (includes the per-shard rolling
  // latency histograms registered in add_shard)…
  std::string out =
      obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  std::ostringstream os;
  // …then the live per-shard view the router alone can render…
  {
    LockGuard lock(ring_mutex_);
    for (const auto& [id, conn] : conns_) {
      const std::string label =
          "{shard=\"" + obs::sanitize_label_value(std::to_string(id)) +
          "\"}";
      os << "scwc_cluster_shard_up" << label << ' '
         << (conn->up.load() ? 1 : 0) << '\n';
      os << "scwc_cluster_shard_inflight" << label << ' '
         << conn->inflight.load() << '\n';
      os << "scwc_cluster_shard_wire_version" << label << ' '
         << conn->wire_version << '\n';
      os << "scwc_cluster_shard_clock_offset_ns" << label << ' '
         << conn->clock_offset_ns << '\n';
    }
  }
  // …then every worker series from the latest wire scrape, re-exported
  // under its shard label. Both maps are ordered, so the exposition is
  // deterministic for a fixed set of polled snapshots.
  {
    LockGuard lock(metrics_mutex_);
    for (const auto& [id, reply] : polled_metrics_) {
      const std::string shard = obs::sanitize_label_value(std::to_string(id));
      const std::string label = "{shard=\"" + shard + "\"}";
      for (const auto& [name, value] : reply.counters) {
        os << obs::sanitize_metric_name(name) << label << ' ' << value
           << '\n';
      }
      for (const auto& [name, value] : reply.gauges) {
        os << obs::sanitize_metric_name(name) << label << ' '
           << prom_value(value) << '\n';
      }
      for (const net::MetricsRollingEntry& e : reply.rolling) {
        const std::string name = obs::sanitize_metric_name(e.name);
        os << name << "_count" << label << ' ' << e.count << '\n';
        os << name << "{shard=\"" << shard << "\",quantile=\"0.5\"} "
           << prom_value(e.p50) << '\n';
        os << name << "{shard=\"" << shard << "\",quantile=\"0.9\"} "
           << prom_value(e.p90) << '\n';
        os << name << "{shard=\"" << shard << "\",quantile=\"0.99\"} "
           << prom_value(e.p99) << '\n';
      }
    }
  }
  out += os.str();
  return out;
}

obs::Json ShardRouter::shards_health_json() const {
  obs::Json::Array arr;
  for (const ShardStatus& s : shards()) {
    obs::Json::Object o;
    o.emplace("shard_id", obs::Json(static_cast<double>(s.shard_id)));
    o.emplace("port", obs::Json(static_cast<double>(s.port)));
    o.emplace("up", obs::Json(s.up));
    o.emplace("inflight", obs::Json(static_cast<double>(s.inflight)));
    o.emplace("model_version", obs::Json(s.model_version));
    o.emplace("wire_version", obs::Json(static_cast<double>(s.wire_version)));
    o.emplace("clock_offset_ns",
              obs::Json(static_cast<double>(s.clock_offset_ns)));
    o.emplace("clock_rtt_ns",
              obs::Json(static_cast<double>(s.clock_rtt_ns)));
    arr.push_back(obs::Json(std::move(o)));
  }
  obs::Json::Object root;
  root.emplace("shards", obs::Json(std::move(arr)));
  return obs::Json(std::move(root));
}

std::optional<std::uint32_t> ShardRouter::owner(std::int64_t job_id) const {
  LockGuard lock(ring_mutex_);
  return ring_.owner(job_id);
}

std::size_t ShardRouter::live_shards() const {
  LockGuard lock(ring_mutex_);
  return ring_.shard_count();
}

std::vector<ShardStatus> ShardRouter::shards() const {
  std::vector<ShardStatus> out;
  LockGuard lock(ring_mutex_);
  out.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) {
    ShardStatus status;
    status.shard_id = id;
    status.port = conn->port;
    status.up = conn->up.load();
    status.inflight = conn->inflight.load();
    status.window_steps = conn->hello.window_steps;
    status.sensors = conn->hello.sensors;
    status.model_version = conn->hello.model_version;
    status.wire_version = conn->wire_version;
    status.clock_offset_ns = conn->clock_offset_ns;
    status.clock_rtt_ns = conn->clock_rtt_ns;
    out.push_back(std::move(status));
  }
  return out;
}

void ShardRouter::shutdown_workers() {
  std::vector<std::shared_ptr<ShardConn>> targets;
  {
    LockGuard lock(ring_mutex_);
    for (const auto& [id, conn] : conns_) {
      if (conn->up.load()) targets.push_back(conn);
    }
  }
  for (const auto& conn : targets) {
    (void)send(*conn, net::FrameType::kShutdown, "");
  }
}

void ShardRouter::stop() {
  std::map<std::uint32_t, std::shared_ptr<ShardConn>> conns;
  {
    LockGuard lock(ring_mutex_);
    if (stopped_) return;
    stopped_ = true;
    conns = conns_;
  }
  for (const auto& [id, conn] : conns) {
    mark_down(*conn, serve::RejectReason::kShutdown);
  }
  // The poller is stopped after mark_down so an in-flight scrape wakes
  // from its control_cv wait instead of running out its timeout.
  {
    LockGuard lock(metrics_mutex_);
    poll_stop_ = true;
  }
  poll_cv_.notify_all();
  if (poll_thread_.joinable()) poll_thread_.join();
  for (const auto& [id, conn] : conns) {
    if (conn->reader.joinable()) conn->reader.join();
    conn->sock.close();
  }
}

void ShardRouter::reader_loop(const std::shared_ptr<ShardConn>& conn) {
  try {
    while (std::optional<net::Frame> frame = net::read_frame(conn->sock)) {
      obs_wire_rx_frames_.inc();
      obs_wire_rx_bytes_.inc(frame->payload.size() + net::kHeaderBytes);
      switch (frame->type) {
        case net::FrameType::kVerdict: {
          const net::VerdictFrame v =
              net::decode_verdict(frame->payload, frame->version);
          if (frame->version < 2) obs_unphased_verdicts_.inc();
          PendingRequest req;
          bool found = false;
          {
            LockGuard lock(conn->pending_mutex);
            const auto it = conn->pending.find(v.request_id);
            if (it != conn->pending.end()) {
              req = std::move(it->second);
              conn->pending.erase(it);
              found = true;
            }
          }
          if (!found) {
            // Stream-driven verdicts (high id bit) and verdicts for
            // requests we already failed land here.
            orphan_verdicts_.fetch_add(1);
            break;
          }
          conn->inflight.fetch_sub(1);
          verdicts_.fetch_add(1);
          obs_verdicts_.inc();

          serve::ServeResult result;
          result.accepted = v.accepted;
          result.reject_reason =
              static_cast<serve::RejectReason>(v.reject_reason);
          result.prediction.label = v.label;
          result.prediction.abstained = v.abstained;
          result.prediction.reason =
              static_cast<robust::AbstainReason>(v.abstain_reason);
          result.prediction.report.steps = conn->hello.window_steps;
          result.prediction.report.sensors = conn->hello.sensors;
          result.prediction.report.missing_values = v.missing_values;
          result.prediction.report.repaired_values = v.repaired_values;
          result.model_version = v.model_version;
          result.batch_size = v.batch_size;
          result.degrade_level = v.degrade_level;
          // The router's identity wins: with a v2 worker the ids are the
          // same anyway; a v1 worker stamped its own, which would collide
          // with router-issued ids across shards.
          result.trace_id = req.trace_id;
          result.total_latency_s = obs::seconds_between(
              req.submitted_at, std::chrono::steady_clock::now());
          // Repurposed at the router tier: time NOT spent inside the
          // worker, i.e. wire + router overhead.
          result.queue_delay_s =
              std::max(0.0, result.total_latency_s - v.worker_latency_s);

          // Full cross-process phase breakdown: router-side stamps, the
          // worker's own split (v2), and the wire residual.
          result.phases.admission_s = req.admission_s;
          result.phases.route_s = req.route_s;
          result.phases.wire_send_s = req.wire_send_s;
          result.phases.queue_s = v.worker_queue_s;
          result.phases.transform_s = v.worker_transform_s;
          result.phases.predict_s = v.worker_predict_s;
          result.phases.total_s = result.total_latency_s;
          result.phases.wire_recv_s = std::max(
              0.0, result.total_latency_s - req.admission_s - req.route_s -
                       req.wire_send_s - v.worker_latency_s);

          conn->rolling_latency.observe(result.total_latency_s);
          record_request(req.trace_id, req.trace_sampled, req.job_id,
                         conn->shard_id, req.submitted_at, result);
          req.promise.set_value(std::move(result));
          break;
        }
        case net::FrameType::kSwapAck: {
          {
            LockGuard lock(conn->control_mutex);
            conn->swap_ack = net::decode_swap_ack(frame->payload);
          }
          conn->control_cv.notify_all();
          break;
        }
        case net::FrameType::kStatsReply: {
          {
            LockGuard lock(conn->control_mutex);
            conn->stats_reply = net::decode_stats_reply(frame->payload);
          }
          conn->control_cv.notify_all();
          break;
        }
        case net::FrameType::kMetricsReply: {
          {
            LockGuard lock(conn->control_mutex);
            conn->metrics_reply = net::decode_metrics_reply(frame->payload);
          }
          conn->control_cv.notify_all();
          break;
        }
        case net::FrameType::kError: {
          const net::ErrorFrame err = net::decode_error(frame->payload);
          SCWC_LOG_WARN("cluster router: shard "
                        << conn->shard_id << " reported: " << err.message);
          break;
        }
        default:
          break;  // kPong and anything else valid-but-unexpected
      }
    }
  } catch (const scwc::Error& e) {
    SCWC_LOG_WARN("cluster router: protocol error from shard "
                  << conn->shard_id << ": " << e.what());
  }
  mark_down(*conn, serve::RejectReason::kShardDown);
}

void ShardRouter::mark_down(ShardConn& conn, serve::RejectReason reason) {
  const bool first = conn.up.exchange(false);
  if (first) {
    {
      LockGuard lock(ring_mutex_);
      ring_.remove_shard(conn.shard_id);
      obs_ring_size_.set(static_cast<double>(ring_.shard_count()));
    }
    if (reason == serve::RejectReason::kShardDown) {
      obs_shard_deaths_.inc();
      SCWC_LOG_WARN("cluster router: shard "
                    << conn.shard_id
                    << " down — ring rehashed onto survivors");
    }
  }
  conn.sock.shutdown_now();
  // Fail everything in flight with the typed reason; late registrations
  // from racing submitters fail at their send() and clean up themselves.
  std::unordered_map<std::uint64_t, PendingRequest> orphaned;
  {
    LockGuard lock(conn.pending_mutex);
    orphaned.swap(conn.pending);
  }
  for (auto& [id, req] : orphaned) {
    conn.inflight.fetch_sub(1);
    serve::ServeResult result;
    result.accepted = false;
    result.reject_reason = reason;
    result.trace_id = req.trace_id;
    const auto now = std::chrono::steady_clock::now();
    result.total_latency_s = obs::seconds_between(req.submitted_at, now);
    result.phases.admission_s = req.admission_s;
    result.phases.route_s = req.route_s;
    result.phases.wire_send_s = req.wire_send_s;
    result.phases.total_s = result.total_latency_s;
    if (reason == serve::RejectReason::kShardDown) {
      obs_shed_shard_down_.inc();
    } else {
      obs_shed_shutdown_.inc();
    }
    record_request(req.trace_id, req.trace_sampled, req.job_id,
                   conn.shard_id, req.submitted_at, result);
    req.promise.set_value(std::move(result));
  }
  {
    LockGuard lock(conn.control_mutex);
    if (!conn.swap_ack.has_value()) {
      net::SwapAckFrame ack;
      ack.ok = false;
      ack.message = "shard down";
      conn.swap_ack = ack;
    }
  }
  conn.control_cv.notify_all();
}

std::future<serve::ServeResult> ShardRouter::shed(
    serve::RejectReason reason, std::uint64_t trace_id, bool sampled,
    std::int64_t job_id, std::optional<std::uint32_t> shard_id,
    std::chrono::steady_clock::time_point started,
    const obs::RequestPhases& phases) {
  switch (reason) {
    case serve::RejectReason::kQueueFull:
      obs_shed_queue_full_.inc();
      break;
    case serve::RejectReason::kShardDown:
      obs_shed_shard_down_.inc();
      break;
    case serve::RejectReason::kShutdown:
      obs_shed_shutdown_.inc();
      break;
    default:
      break;
  }
  std::promise<serve::ServeResult> promise;
  serve::ServeResult result;
  result.accepted = false;
  result.reject_reason = reason;
  result.trace_id = trace_id;
  result.phases = phases;
  result.total_latency_s = phases.total_s;
  record_request(trace_id, sampled, job_id, shard_id, started, result);
  promise.set_value(std::move(result));
  return promise.get_future();
}

void ShardRouter::record_request(std::uint64_t trace_id, bool sampled,
                                 std::int64_t job_id,
                                 std::optional<std::uint32_t> shard_id,
                                 std::chrono::steady_clock::time_point started,
                                 const serve::ServeResult& result) {
  const bool want_trace = sampled;
  const bool want_audit = config_.audit != nullptr;
  if (!want_trace && !want_audit) return;

  // Mirrors ClassificationService::note_verdict so router-side records
  // are shaped exactly like in-process ones (plus wire phases/shard_id).
  std::string event;
  if (!result.accepted) {
    event = "shed";
  } else if (result.prediction.abstained) {
    event = "abstain";
  } else {
    event = "answer";
  }

  if (want_trace) {
    obs::RequestTraceRecord rec;
    rec.trace_id = trace_id;
    rec.job_id = job_id;
    rec.start_s = tracer_.since_epoch(started);
    rec.phases = result.phases;
    rec.outcome = event;
    if (event == "shed") {
      rec.outcome +=
          std::string(":") + serve::reject_reason_name(result.reject_reason);
    } else if (event == "abstain") {
      rec.outcome += std::string(":") +
                     robust::abstain_reason_name(result.prediction.reason);
    }
    rec.model_version = result.model_version;
    rec.batch_size = result.batch_size;
    rec.degrade_level = result.degrade_level;
    tracer_.record(std::move(rec));
  }

  if (want_audit) {
    serve::AuditRecord rec;
    rec.trace_id = trace_id;
    rec.job_id = job_id;
    rec.event = event;
    rec.model_version = result.model_version;
    rec.label = result.prediction.label;
    rec.degrade_level = result.degrade_level;
    rec.batch_size = result.batch_size;
    if (event == "abstain") {
      rec.abstain_reason =
          robust::abstain_reason_name(result.prediction.reason);
    }
    if (event == "shed") {
      rec.reject_reason = serve::reject_reason_name(result.reject_reason);
    } else {
      rec.quality = result.prediction.report.quality();
      rec.missing_values = result.prediction.report.missing_values;
      rec.repaired_values = result.prediction.report.repaired_values;
    }
    rec.phases = result.phases;
    rec.shard_id = shard_id;
    config_.audit->log(rec);
  }
}

SwapOutcome ShardRouter::push_to_shard(ShardConn& conn,
                                       const std::string& bundle_bytes,
                                       const std::string& version) {
  SwapOutcome outcome;
  outcome.shard_id = conn.shard_id;
  {
    LockGuard lock(conn.control_mutex);
    conn.swap_ack.reset();
  }
  net::SwapBeginFrame begin;
  begin.version = version;
  begin.total_bytes = bundle_bytes.size();
  if (!send(conn, net::FrameType::kSwapBegin,
            net::encode_swap_begin(begin))) {
    outcome.message = "send failed (shard gone?)";
    return outcome;
  }
  for (std::size_t offset = 0; offset < bundle_bytes.size();
       offset += kPushChunkBytes) {
    net::SwapChunkFrame chunk;
    chunk.offset = offset;
    chunk.bytes = bundle_bytes.substr(
        offset, std::min(kPushChunkBytes, bundle_bytes.size() - offset));
    if (!send(conn, net::FrameType::kSwapChunk,
              net::encode_swap_chunk(chunk))) {
      outcome.message = "send failed mid-stream";
      return outcome;
    }
  }
  net::SwapCommitFrame commit;
  commit.crc32 = net::crc32(bundle_bytes);
  if (!send(conn, net::FrameType::kSwapCommit,
            net::encode_swap_commit(commit))) {
    outcome.message = "commit send failed";
    return outcome;
  }
  const std::optional<net::SwapAckFrame> ack =
      wait_swap_ack(conn, config_.swap_ack_timeout_s);
  if (!ack.has_value()) {
    outcome.message = "swap ack timeout";
    return outcome;
  }
  outcome.ok = ack->ok;
  outcome.active_version = ack->active_version;
  outcome.message = ack->message;
  return outcome;
}

void ShardRouter::abort_on_shard(ShardConn& conn, SwapOutcome& outcome,
                                 const std::string& reason) {
  {
    LockGuard lock(conn.control_mutex);
    conn.swap_ack.reset();
  }
  net::SwapAbortFrame abort_frame;
  abort_frame.reason = reason;
  if (!send(conn, net::FrameType::kSwapAbort,
            net::encode_swap_abort(abort_frame))) {
    outcome.message = "rollback send failed";
    outcome.ok = false;
    return;
  }
  const std::optional<net::SwapAckFrame> ack =
      wait_swap_ack(conn, config_.swap_ack_timeout_s);
  outcome.rolled_back = ack.has_value() && ack->ok;
  outcome.ok = false;  // the push as a whole did not take on this shard
  if (ack.has_value()) outcome.active_version = ack->active_version;
}

std::optional<net::SwapAckFrame> ShardRouter::wait_swap_ack(
    ShardConn& conn, double timeout_s) {
  const auto deadline = deadline_after(timeout_s);
  LockGuard lock(conn.control_mutex);
  while (!conn.swap_ack.has_value()) {
    if (conn.control_cv.wait_until(conn.control_mutex, deadline) ==
            std::cv_status::timeout &&
        !conn.swap_ack.has_value()) {
      return std::nullopt;
    }
  }
  std::optional<net::SwapAckFrame> ack = std::move(conn.swap_ack);
  conn.swap_ack.reset();
  return ack;
}

bool ShardRouter::send(ShardConn& conn, net::FrameType type,
                       std::string_view payload) {
  LockGuard lock(conn.write_mutex);
  if (!net::write_frame(conn.sock, type, payload, conn.wire_version)) {
    return false;
  }
  obs_wire_tx_frames_.inc();
  obs_wire_tx_bytes_.inc(payload.size() + net::kHeaderBytes);
  return true;
}

}  // namespace scwc::cluster
