file(REMOVE_RECURSE
  "CMakeFiles/ablation_cpu_fusion.dir/ablation_cpu_fusion.cpp.o"
  "CMakeFiles/ablation_cpu_fusion.dir/ablation_cpu_fusion.cpp.o.d"
  "ablation_cpu_fusion"
  "ablation_cpu_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cpu_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
