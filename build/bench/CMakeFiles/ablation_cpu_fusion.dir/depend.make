# Empty dependencies file for ablation_cpu_fusion.
# This may be replaced when dependencies are built.
