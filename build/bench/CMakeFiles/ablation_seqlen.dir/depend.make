# Empty dependencies file for ablation_seqlen.
# This may be replaced when dependencies are built.
