file(REMOVE_RECURSE
  "CMakeFiles/ablation_seqlen.dir/ablation_seqlen.cpp.o"
  "CMakeFiles/ablation_seqlen.dir/ablation_seqlen.cpp.o.d"
  "ablation_seqlen"
  "ablation_seqlen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_seqlen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
