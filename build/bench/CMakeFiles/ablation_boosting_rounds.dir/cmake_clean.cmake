file(REMOVE_RECURSE
  "CMakeFiles/ablation_boosting_rounds.dir/ablation_boosting_rounds.cpp.o"
  "CMakeFiles/ablation_boosting_rounds.dir/ablation_boosting_rounds.cpp.o.d"
  "ablation_boosting_rounds"
  "ablation_boosting_rounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_boosting_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
