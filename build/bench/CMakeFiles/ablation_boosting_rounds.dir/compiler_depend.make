# Empty compiler generated dependencies file for ablation_boosting_rounds.
# This may be replaced when dependencies are built.
