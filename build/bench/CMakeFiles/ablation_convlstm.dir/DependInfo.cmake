
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_convlstm.cpp" "bench/CMakeFiles/ablation_convlstm.dir/ablation_convlstm.cpp.o" "gcc" "bench/CMakeFiles/ablation_convlstm.dir/ablation_convlstm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/scwc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/preprocess/CMakeFiles/scwc_preprocess.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/scwc_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scwc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/scwc_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scwc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/scwc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/scwc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
