# Empty compiler generated dependencies file for ablation_convlstm.
# This may be replaced when dependencies are built.
