file(REMOVE_RECURSE
  "CMakeFiles/ablation_convlstm.dir/ablation_convlstm.cpp.o"
  "CMakeFiles/ablation_convlstm.dir/ablation_convlstm.cpp.o.d"
  "ablation_convlstm"
  "ablation_convlstm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_convlstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
