# Empty dependencies file for table6_rnn.
# This may be replaced when dependencies are built.
