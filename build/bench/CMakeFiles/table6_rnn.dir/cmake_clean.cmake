file(REMOVE_RECURSE
  "CMakeFiles/table6_rnn.dir/table6_rnn.cpp.o"
  "CMakeFiles/table6_rnn.dir/table6_rnn.cpp.o.d"
  "table6_rnn"
  "table6_rnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
