file(REMOVE_RECURSE
  "CMakeFiles/xgboost_random1.dir/xgboost_random1.cpp.o"
  "CMakeFiles/xgboost_random1.dir/xgboost_random1.cpp.o.d"
  "xgboost_random1"
  "xgboost_random1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xgboost_random1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
