# Empty compiler generated dependencies file for xgboost_random1.
# This may be replaced when dependencies are built.
