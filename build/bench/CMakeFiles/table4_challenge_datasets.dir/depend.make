# Empty dependencies file for table4_challenge_datasets.
# This may be replaced when dependencies are built.
