file(REMOVE_RECURSE
  "CMakeFiles/table4_challenge_datasets.dir/table4_challenge_datasets.cpp.o"
  "CMakeFiles/table4_challenge_datasets.dir/table4_challenge_datasets.cpp.o.d"
  "table4_challenge_datasets"
  "table4_challenge_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_challenge_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
