# Empty compiler generated dependencies file for ablation_dimred.
# This may be replaced when dependencies are built.
