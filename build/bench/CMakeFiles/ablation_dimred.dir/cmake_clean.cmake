file(REMOVE_RECURSE
  "CMakeFiles/ablation_dimred.dir/ablation_dimred.cpp.o"
  "CMakeFiles/ablation_dimred.dir/ablation_dimred.cpp.o.d"
  "ablation_dimred"
  "ablation_dimred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dimred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
