# Empty dependencies file for table5_svm_rf.
# This may be replaced when dependencies are built.
