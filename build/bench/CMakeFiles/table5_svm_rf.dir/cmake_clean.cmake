file(REMOVE_RECURSE
  "CMakeFiles/table5_svm_rf.dir/table5_svm_rf.cpp.o"
  "CMakeFiles/table5_svm_rf.dir/table5_svm_rf.cpp.o.d"
  "table5_svm_rf"
  "table5_svm_rf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_svm_rf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
