file(REMOVE_RECURSE
  "CMakeFiles/table1_dataset_composition.dir/table1_dataset_composition.cpp.o"
  "CMakeFiles/table1_dataset_composition.dir/table1_dataset_composition.cpp.o.d"
  "table1_dataset_composition"
  "table1_dataset_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_dataset_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
