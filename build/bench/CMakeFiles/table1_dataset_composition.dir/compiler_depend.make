# Empty compiler generated dependencies file for table1_dataset_composition.
# This may be replaced when dependencies are built.
