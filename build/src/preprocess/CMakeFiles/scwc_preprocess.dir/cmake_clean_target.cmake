file(REMOVE_RECURSE
  "libscwc_preprocess.a"
)
