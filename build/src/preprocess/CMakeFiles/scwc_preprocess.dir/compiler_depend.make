# Empty compiler generated dependencies file for scwc_preprocess.
# This may be replaced when dependencies are built.
