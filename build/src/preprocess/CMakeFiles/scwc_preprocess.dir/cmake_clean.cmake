file(REMOVE_RECURSE
  "CMakeFiles/scwc_preprocess.dir/covariance_features.cpp.o"
  "CMakeFiles/scwc_preprocess.dir/covariance_features.cpp.o.d"
  "CMakeFiles/scwc_preprocess.dir/pca.cpp.o"
  "CMakeFiles/scwc_preprocess.dir/pca.cpp.o.d"
  "CMakeFiles/scwc_preprocess.dir/pipeline.cpp.o"
  "CMakeFiles/scwc_preprocess.dir/pipeline.cpp.o.d"
  "CMakeFiles/scwc_preprocess.dir/scaler.cpp.o"
  "CMakeFiles/scwc_preprocess.dir/scaler.cpp.o.d"
  "libscwc_preprocess.a"
  "libscwc_preprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_preprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
