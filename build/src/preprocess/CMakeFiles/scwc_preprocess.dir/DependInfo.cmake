
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/preprocess/covariance_features.cpp" "src/preprocess/CMakeFiles/scwc_preprocess.dir/covariance_features.cpp.o" "gcc" "src/preprocess/CMakeFiles/scwc_preprocess.dir/covariance_features.cpp.o.d"
  "/root/repo/src/preprocess/pca.cpp" "src/preprocess/CMakeFiles/scwc_preprocess.dir/pca.cpp.o" "gcc" "src/preprocess/CMakeFiles/scwc_preprocess.dir/pca.cpp.o.d"
  "/root/repo/src/preprocess/pipeline.cpp" "src/preprocess/CMakeFiles/scwc_preprocess.dir/pipeline.cpp.o" "gcc" "src/preprocess/CMakeFiles/scwc_preprocess.dir/pipeline.cpp.o.d"
  "/root/repo/src/preprocess/scaler.cpp" "src/preprocess/CMakeFiles/scwc_preprocess.dir/scaler.cpp.o" "gcc" "src/preprocess/CMakeFiles/scwc_preprocess.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scwc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/scwc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scwc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/scwc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
