file(REMOVE_RECURSE
  "libscwc_linalg.a"
)
