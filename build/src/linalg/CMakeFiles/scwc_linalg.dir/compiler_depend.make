# Empty compiler generated dependencies file for scwc_linalg.
# This may be replaced when dependencies are built.
