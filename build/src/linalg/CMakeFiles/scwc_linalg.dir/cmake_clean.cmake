file(REMOVE_RECURSE
  "CMakeFiles/scwc_linalg.dir/eigen.cpp.o"
  "CMakeFiles/scwc_linalg.dir/eigen.cpp.o.d"
  "CMakeFiles/scwc_linalg.dir/gemm.cpp.o"
  "CMakeFiles/scwc_linalg.dir/gemm.cpp.o.d"
  "CMakeFiles/scwc_linalg.dir/matrix.cpp.o"
  "CMakeFiles/scwc_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/scwc_linalg.dir/stats.cpp.o"
  "CMakeFiles/scwc_linalg.dir/stats.cpp.o.d"
  "libscwc_linalg.a"
  "libscwc_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
