file(REMOVE_RECURSE
  "CMakeFiles/scwc_telemetry.dir/architectures.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/architectures.cpp.o.d"
  "CMakeFiles/scwc_telemetry.dir/corpus.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/corpus.cpp.o.d"
  "CMakeFiles/scwc_telemetry.dir/cpu_synth.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/cpu_synth.cpp.o.d"
  "CMakeFiles/scwc_telemetry.dir/gpu_synth.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/gpu_synth.cpp.o.d"
  "CMakeFiles/scwc_telemetry.dir/job.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/job.cpp.o.d"
  "CMakeFiles/scwc_telemetry.dir/scheduler_log.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/scheduler_log.cpp.o.d"
  "CMakeFiles/scwc_telemetry.dir/signature.cpp.o"
  "CMakeFiles/scwc_telemetry.dir/signature.cpp.o.d"
  "libscwc_telemetry.a"
  "libscwc_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
