file(REMOVE_RECURSE
  "libscwc_telemetry.a"
)
