# Empty compiler generated dependencies file for scwc_telemetry.
# This may be replaced when dependencies are built.
