
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/architectures.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/architectures.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/architectures.cpp.o.d"
  "/root/repo/src/telemetry/corpus.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/corpus.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/corpus.cpp.o.d"
  "/root/repo/src/telemetry/cpu_synth.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/cpu_synth.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/cpu_synth.cpp.o.d"
  "/root/repo/src/telemetry/gpu_synth.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/gpu_synth.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/gpu_synth.cpp.o.d"
  "/root/repo/src/telemetry/job.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/job.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/job.cpp.o.d"
  "/root/repo/src/telemetry/scheduler_log.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/scheduler_log.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/scheduler_log.cpp.o.d"
  "/root/repo/src/telemetry/signature.cpp" "src/telemetry/CMakeFiles/scwc_telemetry.dir/signature.cpp.o" "gcc" "src/telemetry/CMakeFiles/scwc_telemetry.dir/signature.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scwc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/scwc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
