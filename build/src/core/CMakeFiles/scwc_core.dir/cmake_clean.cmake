file(REMOVE_RECURSE
  "CMakeFiles/scwc_core.dir/baselines.cpp.o"
  "CMakeFiles/scwc_core.dir/baselines.cpp.o.d"
  "CMakeFiles/scwc_core.dir/challenge.cpp.o"
  "CMakeFiles/scwc_core.dir/challenge.cpp.o.d"
  "CMakeFiles/scwc_core.dir/fusion.cpp.o"
  "CMakeFiles/scwc_core.dir/fusion.cpp.o.d"
  "CMakeFiles/scwc_core.dir/report.cpp.o"
  "CMakeFiles/scwc_core.dir/report.cpp.o.d"
  "CMakeFiles/scwc_core.dir/rnn_experiments.cpp.o"
  "CMakeFiles/scwc_core.dir/rnn_experiments.cpp.o.d"
  "libscwc_core.a"
  "libscwc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
