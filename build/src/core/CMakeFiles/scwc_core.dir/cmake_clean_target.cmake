file(REMOVE_RECURSE
  "libscwc_core.a"
)
