# Empty compiler generated dependencies file for scwc_core.
# This may be replaced when dependencies are built.
