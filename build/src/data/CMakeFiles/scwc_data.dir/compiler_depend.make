# Empty compiler generated dependencies file for scwc_data.
# This may be replaced when dependencies are built.
