file(REMOVE_RECURSE
  "libscwc_data.a"
)
