file(REMOVE_RECURSE
  "CMakeFiles/scwc_data.dir/challenge_dataset.cpp.o"
  "CMakeFiles/scwc_data.dir/challenge_dataset.cpp.o.d"
  "CMakeFiles/scwc_data.dir/npz.cpp.o"
  "CMakeFiles/scwc_data.dir/npz.cpp.o.d"
  "CMakeFiles/scwc_data.dir/serialize.cpp.o"
  "CMakeFiles/scwc_data.dir/serialize.cpp.o.d"
  "CMakeFiles/scwc_data.dir/split.cpp.o"
  "CMakeFiles/scwc_data.dir/split.cpp.o.d"
  "CMakeFiles/scwc_data.dir/tensor3.cpp.o"
  "CMakeFiles/scwc_data.dir/tensor3.cpp.o.d"
  "CMakeFiles/scwc_data.dir/window.cpp.o"
  "CMakeFiles/scwc_data.dir/window.cpp.o.d"
  "libscwc_data.a"
  "libscwc_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
