
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/challenge_dataset.cpp" "src/data/CMakeFiles/scwc_data.dir/challenge_dataset.cpp.o" "gcc" "src/data/CMakeFiles/scwc_data.dir/challenge_dataset.cpp.o.d"
  "/root/repo/src/data/npz.cpp" "src/data/CMakeFiles/scwc_data.dir/npz.cpp.o" "gcc" "src/data/CMakeFiles/scwc_data.dir/npz.cpp.o.d"
  "/root/repo/src/data/serialize.cpp" "src/data/CMakeFiles/scwc_data.dir/serialize.cpp.o" "gcc" "src/data/CMakeFiles/scwc_data.dir/serialize.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/data/CMakeFiles/scwc_data.dir/split.cpp.o" "gcc" "src/data/CMakeFiles/scwc_data.dir/split.cpp.o.d"
  "/root/repo/src/data/tensor3.cpp" "src/data/CMakeFiles/scwc_data.dir/tensor3.cpp.o" "gcc" "src/data/CMakeFiles/scwc_data.dir/tensor3.cpp.o.d"
  "/root/repo/src/data/window.cpp" "src/data/CMakeFiles/scwc_data.dir/window.cpp.o" "gcc" "src/data/CMakeFiles/scwc_data.dir/window.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scwc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/scwc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/scwc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
