# Empty dependencies file for scwc_nn.
# This may be replaced when dependencies are built.
