file(REMOVE_RECURSE
  "libscwc_nn.a"
)
