file(REMOVE_RECURSE
  "CMakeFiles/scwc_nn.dir/conv.cpp.o"
  "CMakeFiles/scwc_nn.dir/conv.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/convlstm.cpp.o"
  "CMakeFiles/scwc_nn.dir/convlstm.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/layers.cpp.o"
  "CMakeFiles/scwc_nn.dir/layers.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/loss.cpp.o"
  "CMakeFiles/scwc_nn.dir/loss.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/lstm.cpp.o"
  "CMakeFiles/scwc_nn.dir/lstm.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/models.cpp.o"
  "CMakeFiles/scwc_nn.dir/models.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/optimizer.cpp.o"
  "CMakeFiles/scwc_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/scheduler.cpp.o"
  "CMakeFiles/scwc_nn.dir/scheduler.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/sequence.cpp.o"
  "CMakeFiles/scwc_nn.dir/sequence.cpp.o.d"
  "CMakeFiles/scwc_nn.dir/trainer.cpp.o"
  "CMakeFiles/scwc_nn.dir/trainer.cpp.o.d"
  "libscwc_nn.a"
  "libscwc_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
