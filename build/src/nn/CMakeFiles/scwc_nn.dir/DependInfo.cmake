
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/conv.cpp" "src/nn/CMakeFiles/scwc_nn.dir/conv.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/conv.cpp.o.d"
  "/root/repo/src/nn/convlstm.cpp" "src/nn/CMakeFiles/scwc_nn.dir/convlstm.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/convlstm.cpp.o.d"
  "/root/repo/src/nn/layers.cpp" "src/nn/CMakeFiles/scwc_nn.dir/layers.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/layers.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/scwc_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/scwc_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/nn/CMakeFiles/scwc_nn.dir/models.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/models.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/scwc_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/scheduler.cpp" "src/nn/CMakeFiles/scwc_nn.dir/scheduler.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/scheduler.cpp.o.d"
  "/root/repo/src/nn/sequence.cpp" "src/nn/CMakeFiles/scwc_nn.dir/sequence.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/sequence.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/scwc_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/scwc_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scwc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/scwc_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/scwc_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/scwc_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/scwc_telemetry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
