# Empty compiler generated dependencies file for scwc_common.
# This may be replaced when dependencies are built.
