file(REMOVE_RECURSE
  "CMakeFiles/scwc_common.dir/cli.cpp.o"
  "CMakeFiles/scwc_common.dir/cli.cpp.o.d"
  "CMakeFiles/scwc_common.dir/env.cpp.o"
  "CMakeFiles/scwc_common.dir/env.cpp.o.d"
  "CMakeFiles/scwc_common.dir/error.cpp.o"
  "CMakeFiles/scwc_common.dir/error.cpp.o.d"
  "CMakeFiles/scwc_common.dir/log.cpp.o"
  "CMakeFiles/scwc_common.dir/log.cpp.o.d"
  "CMakeFiles/scwc_common.dir/rng.cpp.o"
  "CMakeFiles/scwc_common.dir/rng.cpp.o.d"
  "CMakeFiles/scwc_common.dir/string_util.cpp.o"
  "CMakeFiles/scwc_common.dir/string_util.cpp.o.d"
  "CMakeFiles/scwc_common.dir/table.cpp.o"
  "CMakeFiles/scwc_common.dir/table.cpp.o.d"
  "CMakeFiles/scwc_common.dir/thread_pool.cpp.o"
  "CMakeFiles/scwc_common.dir/thread_pool.cpp.o.d"
  "libscwc_common.a"
  "libscwc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
