file(REMOVE_RECURSE
  "libscwc_common.a"
)
