
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/decision_tree.cpp" "src/ml/CMakeFiles/scwc_ml.dir/decision_tree.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/decision_tree.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/scwc_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/knn.cpp" "src/ml/CMakeFiles/scwc_ml.dir/knn.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/knn.cpp.o.d"
  "/root/repo/src/ml/logistic.cpp" "src/ml/CMakeFiles/scwc_ml.dir/logistic.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/logistic.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/scwc_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/model_selection.cpp" "src/ml/CMakeFiles/scwc_ml.dir/model_selection.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/model_selection.cpp.o.d"
  "/root/repo/src/ml/random_forest.cpp" "src/ml/CMakeFiles/scwc_ml.dir/random_forest.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/random_forest.cpp.o.d"
  "/root/repo/src/ml/svm.cpp" "src/ml/CMakeFiles/scwc_ml.dir/svm.cpp.o" "gcc" "src/ml/CMakeFiles/scwc_ml.dir/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/scwc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/scwc_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
