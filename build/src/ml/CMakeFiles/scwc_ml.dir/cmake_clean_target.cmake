file(REMOVE_RECURSE
  "libscwc_ml.a"
)
