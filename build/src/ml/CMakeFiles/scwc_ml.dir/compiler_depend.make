# Empty compiler generated dependencies file for scwc_ml.
# This may be replaced when dependencies are built.
