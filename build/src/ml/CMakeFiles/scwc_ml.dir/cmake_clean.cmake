file(REMOVE_RECURSE
  "CMakeFiles/scwc_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/scwc_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/gbt.cpp.o"
  "CMakeFiles/scwc_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/knn.cpp.o"
  "CMakeFiles/scwc_ml.dir/knn.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/logistic.cpp.o"
  "CMakeFiles/scwc_ml.dir/logistic.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/metrics.cpp.o"
  "CMakeFiles/scwc_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/model_selection.cpp.o"
  "CMakeFiles/scwc_ml.dir/model_selection.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/random_forest.cpp.o"
  "CMakeFiles/scwc_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/scwc_ml.dir/svm.cpp.o"
  "CMakeFiles/scwc_ml.dir/svm.cpp.o.d"
  "libscwc_ml.a"
  "libscwc_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scwc_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
