file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_properties.dir/test_linalg_properties.cpp.o"
  "CMakeFiles/test_linalg_properties.dir/test_linalg_properties.cpp.o.d"
  "test_linalg_properties"
  "test_linalg_properties.pdb"
  "test_linalg_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
