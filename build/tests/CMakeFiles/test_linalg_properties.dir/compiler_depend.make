# Empty compiler generated dependencies file for test_linalg_properties.
# This may be replaced when dependencies are built.
