file(REMOVE_RECURSE
  "CMakeFiles/test_ml_svm.dir/test_ml_svm.cpp.o"
  "CMakeFiles/test_ml_svm.dir/test_ml_svm.cpp.o.d"
  "test_ml_svm"
  "test_ml_svm.pdb"
  "test_ml_svm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_svm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
