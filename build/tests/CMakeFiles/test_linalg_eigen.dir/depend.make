# Empty dependencies file for test_linalg_eigen.
# This may be replaced when dependencies are built.
