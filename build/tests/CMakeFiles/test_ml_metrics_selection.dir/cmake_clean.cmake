file(REMOVE_RECURSE
  "CMakeFiles/test_ml_metrics_selection.dir/test_ml_metrics_selection.cpp.o"
  "CMakeFiles/test_ml_metrics_selection.dir/test_ml_metrics_selection.cpp.o.d"
  "test_ml_metrics_selection"
  "test_ml_metrics_selection.pdb"
  "test_ml_metrics_selection[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_metrics_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
