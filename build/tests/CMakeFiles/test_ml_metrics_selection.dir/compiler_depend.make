# Empty compiler generated dependencies file for test_ml_metrics_selection.
# This may be replaced when dependencies are built.
