file(REMOVE_RECURSE
  "CMakeFiles/test_ml_gbt.dir/test_ml_gbt.cpp.o"
  "CMakeFiles/test_ml_gbt.dir/test_ml_gbt.cpp.o.d"
  "test_ml_gbt"
  "test_ml_gbt.pdb"
  "test_ml_gbt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_gbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
