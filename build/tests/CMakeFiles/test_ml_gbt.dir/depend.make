# Empty dependencies file for test_ml_gbt.
# This may be replaced when dependencies are built.
