file(REMOVE_RECURSE
  "CMakeFiles/test_core_fusion.dir/test_core_fusion.cpp.o"
  "CMakeFiles/test_core_fusion.dir/test_core_fusion.cpp.o.d"
  "test_core_fusion"
  "test_core_fusion.pdb"
  "test_core_fusion[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
