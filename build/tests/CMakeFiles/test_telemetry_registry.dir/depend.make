# Empty dependencies file for test_telemetry_registry.
# This may be replaced when dependencies are built.
