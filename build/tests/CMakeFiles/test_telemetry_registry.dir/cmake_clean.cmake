file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry_registry.dir/test_telemetry_registry.cpp.o"
  "CMakeFiles/test_telemetry_registry.dir/test_telemetry_registry.cpp.o.d"
  "test_telemetry_registry"
  "test_telemetry_registry.pdb"
  "test_telemetry_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
