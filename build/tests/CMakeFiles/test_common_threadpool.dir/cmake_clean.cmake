file(REMOVE_RECURSE
  "CMakeFiles/test_common_threadpool.dir/test_common_threadpool.cpp.o"
  "CMakeFiles/test_common_threadpool.dir/test_common_threadpool.cpp.o.d"
  "test_common_threadpool"
  "test_common_threadpool.pdb"
  "test_common_threadpool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common_threadpool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
