# Empty dependencies file for test_common_threadpool.
# This may be replaced when dependencies are built.
