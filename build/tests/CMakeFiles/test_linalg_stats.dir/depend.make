# Empty dependencies file for test_linalg_stats.
# This may be replaced when dependencies are built.
