file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_stats.dir/test_linalg_stats.cpp.o"
  "CMakeFiles/test_linalg_stats.dir/test_linalg_stats.cpp.o.d"
  "test_linalg_stats"
  "test_linalg_stats.pdb"
  "test_linalg_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
