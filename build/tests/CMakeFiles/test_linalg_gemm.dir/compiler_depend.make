# Empty compiler generated dependencies file for test_linalg_gemm.
# This may be replaced when dependencies are built.
