file(REMOVE_RECURSE
  "CMakeFiles/test_linalg_gemm.dir/test_linalg_gemm.cpp.o"
  "CMakeFiles/test_linalg_gemm.dir/test_linalg_gemm.cpp.o.d"
  "test_linalg_gemm"
  "test_linalg_gemm.pdb"
  "test_linalg_gemm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_linalg_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
