# Empty dependencies file for test_data_window_split.
# This may be replaced when dependencies are built.
