file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry_synth.dir/test_telemetry_synth.cpp.o"
  "CMakeFiles/test_telemetry_synth.dir/test_telemetry_synth.cpp.o.d"
  "test_telemetry_synth"
  "test_telemetry_synth.pdb"
  "test_telemetry_synth[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
