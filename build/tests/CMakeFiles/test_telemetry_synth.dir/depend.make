# Empty dependencies file for test_telemetry_synth.
# This may be replaced when dependencies are built.
