file(REMOVE_RECURSE
  "CMakeFiles/test_data_npz.dir/test_data_npz.cpp.o"
  "CMakeFiles/test_data_npz.dir/test_data_npz.cpp.o.d"
  "test_data_npz"
  "test_data_npz.pdb"
  "test_data_npz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_npz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
