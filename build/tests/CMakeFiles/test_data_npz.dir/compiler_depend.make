# Empty compiler generated dependencies file for test_data_npz.
# This may be replaced when dependencies are built.
