file(REMOVE_RECURSE
  "CMakeFiles/test_data_serialize.dir/test_data_serialize.cpp.o"
  "CMakeFiles/test_data_serialize.dir/test_data_serialize.cpp.o.d"
  "test_data_serialize"
  "test_data_serialize.pdb"
  "test_data_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
