file(REMOVE_RECURSE
  "CMakeFiles/test_simulator_properties.dir/test_simulator_properties.cpp.o"
  "CMakeFiles/test_simulator_properties.dir/test_simulator_properties.cpp.o.d"
  "test_simulator_properties"
  "test_simulator_properties.pdb"
  "test_simulator_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simulator_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
