# Empty dependencies file for test_core_challenge.
# This may be replaced when dependencies are built.
