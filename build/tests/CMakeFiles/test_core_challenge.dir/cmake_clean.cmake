file(REMOVE_RECURSE
  "CMakeFiles/test_core_challenge.dir/test_core_challenge.cpp.o"
  "CMakeFiles/test_core_challenge.dir/test_core_challenge.cpp.o.d"
  "test_core_challenge"
  "test_core_challenge.pdb"
  "test_core_challenge[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_challenge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
