# Empty compiler generated dependencies file for test_data_tensor.
# This may be replaced when dependencies are built.
