file(REMOVE_RECURSE
  "CMakeFiles/test_data_tensor.dir/test_data_tensor.cpp.o"
  "CMakeFiles/test_data_tensor.dir/test_data_tensor.cpp.o.d"
  "test_data_tensor"
  "test_data_tensor.pdb"
  "test_data_tensor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
