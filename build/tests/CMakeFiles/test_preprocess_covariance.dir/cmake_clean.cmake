file(REMOVE_RECURSE
  "CMakeFiles/test_preprocess_covariance.dir/test_preprocess_covariance.cpp.o"
  "CMakeFiles/test_preprocess_covariance.dir/test_preprocess_covariance.cpp.o.d"
  "test_preprocess_covariance"
  "test_preprocess_covariance.pdb"
  "test_preprocess_covariance[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocess_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
