# Empty dependencies file for test_preprocess_covariance.
# This may be replaced when dependencies are built.
