file(REMOVE_RECURSE
  "CMakeFiles/test_preprocess_scaler_pca.dir/test_preprocess_scaler_pca.cpp.o"
  "CMakeFiles/test_preprocess_scaler_pca.dir/test_preprocess_scaler_pca.cpp.o.d"
  "test_preprocess_scaler_pca"
  "test_preprocess_scaler_pca.pdb"
  "test_preprocess_scaler_pca[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_preprocess_scaler_pca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
