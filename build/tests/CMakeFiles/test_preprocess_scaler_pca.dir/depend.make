# Empty dependencies file for test_preprocess_scaler_pca.
# This may be replaced when dependencies are built.
