# Empty dependencies file for test_telemetry_scheduler.
# This may be replaced when dependencies are built.
