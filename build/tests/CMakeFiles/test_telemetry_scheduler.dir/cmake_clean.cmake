file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry_scheduler.dir/test_telemetry_scheduler.cpp.o"
  "CMakeFiles/test_telemetry_scheduler.dir/test_telemetry_scheduler.cpp.o.d"
  "test_telemetry_scheduler"
  "test_telemetry_scheduler.pdb"
  "test_telemetry_scheduler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
