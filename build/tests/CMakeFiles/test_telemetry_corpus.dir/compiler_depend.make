# Empty compiler generated dependencies file for test_telemetry_corpus.
# This may be replaced when dependencies are built.
