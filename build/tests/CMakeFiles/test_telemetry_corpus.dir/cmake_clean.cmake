file(REMOVE_RECURSE
  "CMakeFiles/test_telemetry_corpus.dir/test_telemetry_corpus.cpp.o"
  "CMakeFiles/test_telemetry_corpus.dir/test_telemetry_corpus.cpp.o.d"
  "test_telemetry_corpus"
  "test_telemetry_corpus.pdb"
  "test_telemetry_corpus[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_telemetry_corpus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
