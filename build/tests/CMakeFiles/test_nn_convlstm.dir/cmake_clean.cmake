file(REMOVE_RECURSE
  "CMakeFiles/test_nn_convlstm.dir/test_nn_convlstm.cpp.o"
  "CMakeFiles/test_nn_convlstm.dir/test_nn_convlstm.cpp.o.d"
  "test_nn_convlstm"
  "test_nn_convlstm.pdb"
  "test_nn_convlstm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn_convlstm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
