# Empty compiler generated dependencies file for test_nn_convlstm.
# This may be replaced when dependencies are built.
