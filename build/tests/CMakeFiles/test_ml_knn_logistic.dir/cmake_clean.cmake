file(REMOVE_RECURSE
  "CMakeFiles/test_ml_knn_logistic.dir/test_ml_knn_logistic.cpp.o"
  "CMakeFiles/test_ml_knn_logistic.dir/test_ml_knn_logistic.cpp.o.d"
  "test_ml_knn_logistic"
  "test_ml_knn_logistic.pdb"
  "test_ml_knn_logistic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ml_knn_logistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
