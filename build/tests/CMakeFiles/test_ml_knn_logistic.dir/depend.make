# Empty dependencies file for test_ml_knn_logistic.
# This may be replaced when dependencies are built.
