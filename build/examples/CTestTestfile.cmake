# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--scale" "tiny")
set_tests_properties(example_quickstart PROPERTIES  ENVIRONMENT "SCWC_LOG=warn" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_live_monitor "/root/repo/build/examples/live_monitor" "--scale" "tiny")
set_tests_properties(example_live_monitor PROPERTIES  ENVIRONMENT "SCWC_LOG=warn" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_challenge_submission "/root/repo/build/examples/challenge_submission" "--scale" "tiny" "--out" "/root/repo/build/challenge_out")
set_tests_properties(example_challenge_submission PROPERTIES  ENVIRONMENT "SCWC_LOG=warn" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_dataset_export "/root/repo/build/examples/dataset_export" "--scale" "tiny" "--out" "/root/repo/build/release_out")
set_tests_properties(example_dataset_export PROPERTIES  ENVIRONMENT "SCWC_LOG=warn" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
