file(REMOVE_RECURSE
  "CMakeFiles/challenge_submission.dir/challenge_submission.cpp.o"
  "CMakeFiles/challenge_submission.dir/challenge_submission.cpp.o.d"
  "challenge_submission"
  "challenge_submission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/challenge_submission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
