# Empty dependencies file for challenge_submission.
# This may be replaced when dependencies are built.
